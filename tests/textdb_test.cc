// Unit and property tests for src/textdb: vocabulary, corpus generation
// (ground-truth consistency invariants), inverted index, search interface,
// and cost accounting.

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "textdb/corpus_generator.h"
#include "textdb/cost_model.h"
#include "textdb/inverted_index.h"
#include "textdb/text_database.h"
#include "textdb/vocabulary.h"

namespace iejoin {
namespace {

// --------------------------------------------------------------------------
// Vocabulary
// --------------------------------------------------------------------------

TEST(VocabularyTest, SentenceEndIsTokenZero) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Text(Vocabulary::kSentenceEnd), ".");
  EXPECT_EQ(vocab.Type(Vocabulary::kSentenceEnd), TokenType::kPunctuation);
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  const TokenId a = vocab.Intern("acme", TokenType::kCompany);
  const TokenId b = vocab.Intern("acme", TokenType::kCompany);
  EXPECT_EQ(a, b);
  EXPECT_EQ(vocab.size(), 2u);  // "." + "acme"
}

TEST(VocabularyTest, FindExistingAndMissing) {
  Vocabulary vocab;
  const TokenId a = vocab.Intern("boston", TokenType::kLocation);
  auto found = vocab.Find("boston");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), a);
  EXPECT_FALSE(vocab.Find("nowhere").ok());
}

TEST(VocabularyTest, EntityDetection) {
  Vocabulary vocab;
  EXPECT_TRUE(vocab.IsEntity(vocab.Intern("acme", TokenType::kCompany)));
  EXPECT_TRUE(vocab.IsEntity(vocab.Intern("paris", TokenType::kLocation)));
  EXPECT_TRUE(vocab.IsEntity(vocab.Intern("alice", TokenType::kPerson)));
  EXPECT_FALSE(vocab.IsEntity(vocab.Intern("hello", TokenType::kWord)));
  EXPECT_FALSE(vocab.IsEntity(Vocabulary::kSentenceEnd));
}

TEST(VocabularyTest, TokenTypeNames) {
  EXPECT_STREQ(TokenTypeName(TokenType::kCompany), "company");
  EXPECT_STREQ(TokenTypeName(TokenType::kWord), "word");
}

// --------------------------------------------------------------------------
// Corpus generation
// --------------------------------------------------------------------------

class GeneratedScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusGenerator generator(ScenarioSpec::Small());
    auto result = generator.Generate();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    scenario_ = new JoinScenario(std::move(result.value()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  static const JoinScenario& scenario() { return *scenario_; }

  static JoinScenario* scenario_;
};

JoinScenario* GeneratedScenarioTest::scenario_ = nullptr;

TEST_F(GeneratedScenarioTest, DocumentCountsMatchSpec) {
  const ScenarioSpec spec = ScenarioSpec::Small();
  EXPECT_EQ(scenario().corpus1->size(), spec.relation1.num_documents);
  EXPECT_EQ(scenario().corpus2->size(), spec.relation2.num_documents);
}

TEST_F(GeneratedScenarioTest, DocumentIdsMatchPositions) {
  for (int64_t i = 0; i < scenario().corpus1->size(); ++i) {
    EXPECT_EQ(scenario().corpus1->document(static_cast<DocId>(i)).id, i);
  }
}

TEST_F(GeneratedScenarioTest, DocClassPartitionIsComplete) {
  const auto& truth = scenario().corpus1->ground_truth();
  EXPECT_EQ(static_cast<int64_t>(truth.good_docs.size() + truth.bad_docs.size() +
                                 truth.empty_docs.size()),
            scenario().corpus1->size());
}

TEST_F(GeneratedScenarioTest, DocClassesMatchDefinition) {
  // Good docs host >=1 good mention; bad docs only bad mentions; empty none.
  const auto& truth = scenario().corpus1->ground_truth();
  for (DocId d : truth.good_docs) {
    EXPECT_TRUE(scenario().corpus1->document(d).has_good_mention());
  }
  for (DocId d : truth.bad_docs) {
    const Document& doc = scenario().corpus1->document(d);
    EXPECT_TRUE(doc.has_any_mention());
    EXPECT_FALSE(doc.has_good_mention());
  }
  for (DocId d : truth.empty_docs) {
    EXPECT_FALSE(scenario().corpus1->document(d).has_any_mention());
  }
}

TEST_F(GeneratedScenarioTest, ValueFrequenciesMatchPlantedMentions) {
  std::unordered_map<TokenId, ValueFrequencies> recount;
  for (const Document& doc : scenario().corpus1->documents()) {
    for (const PlantedMention& m : doc.mentions) {
      if (m.is_good) {
        ++recount[m.join_value].good;
      } else {
        ++recount[m.join_value].bad;
      }
    }
  }
  const auto& truth = scenario().corpus1->ground_truth();
  ASSERT_EQ(recount.size(), truth.value_frequencies.size());
  for (const auto& [value, freq] : truth.value_frequencies) {
    const auto it = recount.find(value);
    ASSERT_NE(it, recount.end());
    EXPECT_EQ(it->second.good, freq.good);
    EXPECT_EQ(it->second.bad, freq.bad);
  }
}

TEST_F(GeneratedScenarioTest, ValueAppearsAtMostOncePerDocumentPerPolarity) {
  // The models assume each attribute value occurs at most once per document
  // (per good/bad polarity as planted).
  for (const Document& doc : scenario().corpus1->documents()) {
    std::set<std::pair<TokenId, bool>> seen;
    for (const PlantedMention& m : doc.mentions) {
      EXPECT_TRUE(seen.insert({m.join_value, m.is_good}).second)
          << "duplicate mention of value " << m.join_value << " in doc " << doc.id;
    }
  }
}

TEST_F(GeneratedScenarioTest, OverlapClassesAreDisjoint) {
  std::set<TokenId> all;
  size_t total = 0;
  for (const auto* set :
       {&scenario().values_gg, &scenario().values_gb, &scenario().values_bg,
        &scenario().values_bb}) {
    all.insert(set->begin(), set->end());
    total += set->size();
  }
  EXPECT_EQ(all.size(), total);
}

TEST_F(GeneratedScenarioTest, OverlapClassesHaveClaimedPolarity) {
  const auto& t1 = scenario().corpus1->ground_truth().value_frequencies;
  const auto& t2 = scenario().corpus2->ground_truth().value_frequencies;
  for (TokenId v : scenario().values_gg) {
    ASSERT_TRUE(t1.count(v) && t2.count(v));
    EXPECT_GT(t1.at(v).good, 0);
    EXPECT_GT(t2.at(v).good, 0);
  }
  for (TokenId v : scenario().values_gb) {
    EXPECT_GT(t1.at(v).good, 0);
    EXPECT_GT(t2.at(v).bad, 0);
    EXPECT_EQ(t2.at(v).good, 0);
  }
  for (TokenId v : scenario().values_bg) {
    EXPECT_EQ(t1.at(v).good, 0);
    EXPECT_GT(t1.at(v).bad, 0);
    EXPECT_GT(t2.at(v).good, 0);
  }
  for (TokenId v : scenario().values_bb) {
    EXPECT_EQ(t1.at(v).good, 0);
    EXPECT_GT(t1.at(v).bad, 0);
    EXPECT_EQ(t2.at(v).good, 0);
    EXPECT_GT(t2.at(v).bad, 0);
  }
}

TEST_F(GeneratedScenarioTest, MentionSentenceIndicesValid) {
  for (const Document& doc : scenario().corpus1->documents()) {
    // Count sentences.
    uint32_t sentences = 0;
    for (TokenId t : doc.tokens) {
      if (t == Vocabulary::kSentenceEnd) ++sentences;
    }
    for (const PlantedMention& m : doc.mentions) {
      EXPECT_LT(m.sentence_index, sentences);
    }
  }
}

TEST_F(GeneratedScenarioTest, MentionSentencesContainBothEntities) {
  const Vocabulary& vocab = scenario().corpus1->vocabulary();
  const auto& truth = scenario().corpus1->ground_truth();
  for (const Document& doc : scenario().corpus1->documents()) {
    // Split into sentences.
    std::vector<std::vector<TokenId>> sentences(1);
    for (TokenId t : doc.tokens) {
      if (t == Vocabulary::kSentenceEnd) {
        sentences.emplace_back();
      } else {
        sentences.back().push_back(t);
      }
    }
    for (const PlantedMention& m : doc.mentions) {
      const auto& sentence = sentences[m.sentence_index];
      bool has_join = false;
      bool has_second = false;
      for (TokenId t : sentence) {
        if (t == m.join_value) has_join = true;
        if (t == m.second_value) has_second = true;
      }
      EXPECT_TRUE(has_join);
      EXPECT_TRUE(has_second);
      EXPECT_EQ(vocab.Type(m.join_value), truth.join_entity_type);
      EXPECT_EQ(vocab.Type(m.second_value), truth.second_entity_type);
    }
  }
}

TEST_F(GeneratedScenarioTest, TotalsAreConsistent) {
  const auto& truth = scenario().corpus1->ground_truth();
  int64_t good = 0;
  int64_t bad = 0;
  int64_t good_values = 0;
  int64_t bad_values = 0;
  for (const auto& [value, freq] : truth.value_frequencies) {
    good += freq.good;
    bad += freq.bad;
    good_values += freq.good > 0 ? 1 : 0;
    bad_values += freq.bad > 0 ? 1 : 0;
  }
  EXPECT_EQ(good, truth.total_good_occurrences);
  EXPECT_EQ(bad, truth.total_bad_occurrences);
  EXPECT_EQ(good_values, truth.num_good_values);
  EXPECT_EQ(bad_values, truth.num_bad_values);
}

TEST_F(GeneratedScenarioTest, OutliersAreFrequentAndBadInBoth) {
  const ScenarioSpec spec = ScenarioSpec::Small();
  // Outliers are appended at the end of values_bb.
  ASSERT_GE(static_cast<int64_t>(scenario().values_bb.size()),
            spec.num_outlier_values);
  const auto& t1 = scenario().corpus1->ground_truth().value_frequencies;
  for (int64_t i = 0; i < spec.num_outlier_values; ++i) {
    const TokenId v =
        scenario().values_bb[scenario().values_bb.size() - 1 - static_cast<size_t>(i)];
    ASSERT_TRUE(t1.count(v));
    // Outlier frequency is fixed (possibly clipped by zone size).
    EXPECT_GE(t1.at(v).bad, spec.outlier_frequency / 2);
    EXPECT_EQ(t1.at(v).good, 0);
    // And their mentions are essentially unextractable.
    for (const Document& doc : scenario().corpus1->documents()) {
      for (const PlantedMention& m : doc.mentions) {
        if (m.join_value == v) {
          EXPECT_LT(m.pattern_affinity, 0.06f);
        }
      }
    }
  }
}

TEST(CorpusGeneratorTest, CorrelatedSharedFrequenciesMatchAcrossSides) {
  ScenarioSpec spec = ScenarioSpec::Small();
  spec.correlate_shared_good_frequencies = true;
  CorpusGenerator generator(spec);
  auto scenario = generator.Generate();
  ASSERT_TRUE(scenario.ok());
  const auto& t1 = scenario->corpus1->ground_truth().value_frequencies;
  const auto& t2 = scenario->corpus2->ground_truth().value_frequencies;
  for (TokenId v : scenario->values_gg) {
    ASSERT_TRUE(t1.count(v) && t2.count(v));
    EXPECT_EQ(t1.at(v).good, t2.at(v).good) << "value " << v;
  }
}

TEST(CorpusGeneratorTest, IndependentFrequenciesDifferAcrossSides) {
  CorpusGenerator generator(ScenarioSpec::Small());
  auto scenario = generator.Generate();
  ASSERT_TRUE(scenario.ok());
  const auto& t1 = scenario->corpus1->ground_truth().value_frequencies;
  const auto& t2 = scenario->corpus2->ground_truth().value_frequencies;
  int differing = 0;
  for (TokenId v : scenario->values_gg) {
    differing += t1.at(v).good != t2.at(v).good ? 1 : 0;
  }
  // Independent draws coincide only occasionally.
  EXPECT_GT(differing, static_cast<int>(scenario->values_gg.size()) / 3);
}

TEST(CorpusGeneratorTest, DeterministicForSameSeed) {
  CorpusGenerator g1(ScenarioSpec::Small());
  CorpusGenerator g2(ScenarioSpec::Small());
  auto s1 = g1.Generate();
  auto s2 = g2.Generate();
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ(s1->corpus1->size(), s2->corpus1->size());
  for (int64_t i = 0; i < s1->corpus1->size(); ++i) {
    EXPECT_EQ(s1->corpus1->document(static_cast<DocId>(i)).tokens,
              s2->corpus1->document(static_cast<DocId>(i)).tokens);
  }
}

TEST(CorpusGeneratorTest, DifferentSeedsDiffer) {
  ScenarioSpec spec = ScenarioSpec::Small();
  spec.seed += 1;
  CorpusGenerator g1(ScenarioSpec::Small());
  CorpusGenerator g2(spec);
  auto s1 = g1.Generate();
  auto s2 = g2.Generate();
  ASSERT_TRUE(s1.ok() && s2.ok());
  bool any_diff = false;
  for (int64_t i = 0; i < s1->corpus1->size() && !any_diff; ++i) {
    any_diff = s1->corpus1->document(static_cast<DocId>(i)).tokens !=
               s2->corpus1->document(static_cast<DocId>(i)).tokens;
  }
  EXPECT_TRUE(any_diff);
}

TEST(CorpusGeneratorTest, SharedVocabularyGivesConsistentIds) {
  auto vocab = std::make_shared<Vocabulary>();
  ScenarioSpec spec_a = ScenarioSpec::Small();
  ScenarioSpec spec_b = ScenarioSpec::Small();
  spec_b.seed += 99;
  CorpusGenerator ga(spec_a);
  CorpusGenerator gb(spec_b);
  auto sa = ga.Generate(vocab);
  auto sb = gb.Generate(vocab);
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_EQ(sa->vocabulary.get(), sb->vocabulary.get());
  // Same value names -> same token ids across scenarios.
  EXPECT_EQ(sa->values_gg, sb->values_gg);
}

struct InvalidSpecCase {
  const char* name;
  ScenarioSpec (*make)();
};

class InvalidSpecTest : public ::testing::TestWithParam<InvalidSpecCase> {};

TEST_P(InvalidSpecTest, GenerateFails) {
  CorpusGenerator generator(GetParam().make());
  EXPECT_FALSE(generator.Generate().ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, InvalidSpecTest,
    ::testing::Values(
        InvalidSpecCase{"zero_docs",
                        [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.relation1.num_documents = 0;
                          return s;
                        }},
        InvalidSpecCase{"bad_zone_order",
                        [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.relation1.good_zone_fraction = 0.8;
                          s.relation1.mention_zone_fraction = 0.5;
                          return s;
                        }},
        InvalidSpecCase{"zone_over_one",
                        [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.relation1.mention_zone_fraction = 1.5;
                          return s;
                        }},
        InvalidSpecCase{"mismatched_join_entity",
                        [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.relation2.join_entity = TokenType::kLocation;
                          return s;
                        }},
        InvalidSpecCase{"negative_overlap",
                        [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.num_shared_gg = -1;
                          return s;
                        }},
        InvalidSpecCase{"bad_affinity_range",
                        [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.relation1.good_affinity_lo = 0.9;
                          s.relation1.good_affinity_hi = 0.4;
                          return s;
                        }},
        InvalidSpecCase{"tiny_context",
                        [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.relation1.context_words_per_mention = 1;
                          return s;
                        }},
        InvalidSpecCase{"zero_freq_cap", [] {
                          ScenarioSpec s = ScenarioSpec::Small();
                          s.relation1.max_good_frequency = 0;
                          return s;
                        }}),
    [](const ::testing::TestParamInfo<InvalidSpecCase>& info) {
      return info.param.name;
    });

TEST_F(GeneratedScenarioTest, RenderTextIsNonEmptyAndHasSentences) {
  const std::string text = scenario().corpus1->RenderText(0);
  EXPECT_FALSE(text.empty());
  EXPECT_NE(text.find('.'), std::string::npos);
}

// --------------------------------------------------------------------------
// Inverted index / TextDatabase
// --------------------------------------------------------------------------

class IndexTest : public GeneratedScenarioTest {
 protected:
  void SetUp() override {
    database_ = std::make_unique<TextDatabase>(scenario().corpus1, /*seed=*/42,
                                               /*top_k=*/50);
  }
  std::unique_ptr<TextDatabase> database_;
};

TEST_F(IndexTest, SingleTermPostingsMatchBruteForce) {
  // Pick a few join values and verify CountMatches against a scan.
  int checked = 0;
  for (const auto& [value, freq] :
       scenario().corpus1->ground_truth().value_frequencies) {
    if (checked >= 5) break;
    ++checked;
    int64_t expected = 0;
    for (const Document& doc : scenario().corpus1->documents()) {
      if (std::find(doc.tokens.begin(), doc.tokens.end(), value) != doc.tokens.end()) {
        ++expected;
      }
    }
    EXPECT_EQ(database_->CountMatches({value}), expected);
  }
}

TEST_F(IndexTest, QueryRespectsTopK) {
  // Find a frequent value with more matches than top_k.
  for (const auto& [value, freq] :
       scenario().corpus1->ground_truth().value_frequencies) {
    const int64_t matches = database_->CountMatches({value});
    if (matches > 50) {
      EXPECT_EQ(static_cast<int64_t>(database_->Query({value}).size()), 50);
      return;
    }
  }
  GTEST_SKIP() << "no value with more than top_k matches";
}

TEST_F(IndexTest, QueryResultsContainTerm) {
  const TokenId value =
      scenario().corpus1->ground_truth().value_frequencies.begin()->first;
  for (DocId d : database_->Query({value})) {
    const Document& doc = scenario().corpus1->document(d);
    EXPECT_NE(std::find(doc.tokens.begin(), doc.tokens.end(), value),
              doc.tokens.end());
  }
}

TEST_F(IndexTest, QueryIsDeterministic) {
  const TokenId value =
      scenario().corpus1->ground_truth().value_frequencies.begin()->first;
  EXPECT_EQ(database_->Query({value}), database_->Query({value}));
}

TEST_F(IndexTest, ConjunctiveQueryIsIntersection) {
  // Find a document with a mention; query for (join_value AND second_value).
  for (const Document& doc : scenario().corpus1->documents()) {
    if (doc.mentions.empty()) continue;
    const PlantedMention& m = doc.mentions.front();
    const auto results =
        database_->index().Query({m.join_value, m.second_value}, 1000000);
    // Our document must be among the matches.
    EXPECT_NE(std::find(results.begin(), results.end(), doc.id), results.end());
    for (DocId d : results) {
      const Document& rd = scenario().corpus1->document(d);
      EXPECT_NE(std::find(rd.tokens.begin(), rd.tokens.end(), m.join_value),
                rd.tokens.end());
      EXPECT_NE(std::find(rd.tokens.begin(), rd.tokens.end(), m.second_value),
                rd.tokens.end());
    }
    return;
  }
  FAIL() << "no mentions in corpus";
}

TEST_F(IndexTest, UnknownTermMatchesNothing) {
  // A token id beyond the vocabulary never occurs.
  EXPECT_EQ(database_->CountMatches({static_cast<TokenId>(10000000)}), 0);
  EXPECT_TRUE(database_->Query({static_cast<TokenId>(10000000)}).empty());
}

TEST_F(IndexTest, EmptyQueryMatchesNothing) {
  EXPECT_TRUE(database_->Query({}).empty());
  EXPECT_EQ(database_->CountMatches({}), 0);
}

TEST_F(IndexTest, SentinelTokenNotIndexed) {
  EXPECT_EQ(database_->CountMatches({Vocabulary::kSentenceEnd}), 0);
}

TEST_F(IndexTest, ScanDocumentCoversAll) {
  std::set<DocId> seen;
  for (int64_t i = 0; i < database_->size(); ++i) {
    seen.insert(database_->ScanDocument(i).id);
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), database_->size());
}

// --------------------------------------------------------------------------
// Cost model
// --------------------------------------------------------------------------

TEST(ExecutionMeterTest, ChargesAccumulate) {
  CostModel costs;
  costs.retrieve_seconds = 1.0;
  costs.extract_seconds = 10.0;
  costs.filter_seconds = 0.5;
  costs.query_seconds = 2.0;
  ExecutionMeter meter(costs);
  meter.ChargeRetrieve(3);
  meter.ChargeExtract(2);
  meter.ChargeFilter(4);
  meter.ChargeQuery();
  EXPECT_EQ(meter.docs_retrieved(), 3);
  EXPECT_EQ(meter.docs_extracted(), 2);
  EXPECT_EQ(meter.docs_filtered(), 4);
  EXPECT_EQ(meter.queries_issued(), 1);
  EXPECT_DOUBLE_EQ(meter.seconds(), 3.0 + 20.0 + 2.0 + 2.0);
}

TEST(ExecutionMeterTest, ResetClearsEverything) {
  ExecutionMeter meter;
  meter.ChargeRetrieve(5);
  meter.ChargeExtract(5);
  meter.Reset();
  EXPECT_EQ(meter.docs_retrieved(), 0);
  EXPECT_DOUBLE_EQ(meter.seconds(), 0.0);
}

TEST(ExecutionMeterTest, DefaultCostsExtractDominates) {
  const CostModel costs;
  EXPECT_GT(costs.extract_seconds, costs.retrieve_seconds);
  EXPECT_GT(costs.extract_seconds, costs.filter_seconds);
  EXPECT_GT(costs.extract_seconds, costs.query_seconds);
}

}  // namespace
}  // namespace iejoin
