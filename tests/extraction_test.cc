// Tests for the Snowball-style extractor and its knob characterization.

#include <algorithm>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "extraction/extractor_profile.h"
#include "extraction/snowball_extractor.h"
#include "textdb/corpus_generator.h"

namespace iejoin {
namespace {

class ExtractionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusGenerator generator(ScenarioSpec::Small());
    auto result = generator.Generate();
    ASSERT_TRUE(result.ok());
    scenario_ = new JoinScenario(std::move(result.value()));
    SnowballConfig config;
    config.min_sim = 0.4;
    auto extractor = SnowballExtractor::Train(*scenario_->corpus1, config);
    ASSERT_TRUE(extractor.ok()) << extractor.status().ToString();
    extractor_ = extractor.value().release();
  }
  static void TearDownTestSuite() {
    delete extractor_;
    delete scenario_;
    extractor_ = nullptr;
    scenario_ = nullptr;
  }

  static const JoinScenario& scenario() { return *scenario_; }
  static const SnowballExtractor& extractor() { return *extractor_; }

  static JoinScenario* scenario_;
  static SnowballExtractor* extractor_;
};

JoinScenario* ExtractionTest::scenario_ = nullptr;
SnowballExtractor* ExtractionTest::extractor_ = nullptr;

TEST_F(ExtractionTest, TrainValidatesConfig) {
  SnowballConfig bad;
  bad.min_sim = 1.5;
  EXPECT_FALSE(SnowballExtractor::Train(*scenario().corpus1, bad).ok());
  bad = SnowballConfig();
  bad.num_patterns = 0;
  EXPECT_FALSE(SnowballExtractor::Train(*scenario().corpus1, bad).ok());
  bad = SnowballConfig();
  bad.pattern_coverage = 0.0;
  EXPECT_FALSE(SnowballExtractor::Train(*scenario().corpus1, bad).ok());
}

TEST_F(ExtractionTest, RelationNameComesFromTraining) {
  EXPECT_EQ(extractor().relation_name(), "Headquarters");
}

TEST_F(ExtractionTest, PermissiveSettingFindsEveryPlantedMention) {
  // At minSim = 0, every candidate sentence (entity pair present) clears the
  // threshold, so every planted mention is recovered.
  const auto permissive = extractor().WithTheta(0.0);
  int64_t planted = 0;
  int64_t extracted = 0;
  for (const Document& doc : scenario().corpus1->documents()) {
    planted += static_cast<int64_t>(doc.mentions.size());
    extracted += static_cast<int64_t>(permissive->Process(doc).size());
  }
  EXPECT_EQ(extracted, planted);
}

TEST_F(ExtractionTest, ExtractionsMatchPlantedMentionsExactly) {
  const auto permissive = extractor().WithTheta(0.0);
  for (int64_t i = 0; i < std::min<int64_t>(scenario().corpus1->size(), 200); ++i) {
    const Document& doc = scenario().corpus1->document(static_cast<DocId>(i));
    const ExtractionBatch batch = permissive->Process(doc);
    ASSERT_EQ(batch.size(), doc.mentions.size());
    // Match by sentence index.
    for (const ExtractedTuple& t : batch) {
      const auto it = std::find_if(doc.mentions.begin(), doc.mentions.end(),
                                   [&](const PlantedMention& m) {
                                     return m.sentence_index == t.sentence_index;
                                   });
      ASSERT_NE(it, doc.mentions.end());
      EXPECT_EQ(t.join_value, it->join_value);
      EXPECT_EQ(t.second_value, it->second_value);
      EXPECT_EQ(t.ground_truth_good, it->is_good);
      EXPECT_EQ(t.doc_id, doc.id);
    }
  }
}

TEST_F(ExtractionTest, HigherThetaExtractsSubset) {
  const auto loose = extractor().WithTheta(0.3);
  const auto strict = extractor().WithTheta(0.7);
  for (int64_t i = 0; i < std::min<int64_t>(scenario().corpus1->size(), 300); ++i) {
    const Document& doc = scenario().corpus1->document(static_cast<DocId>(i));
    const ExtractionBatch a = loose->Process(doc);
    const ExtractionBatch b = strict->Process(doc);
    EXPECT_LE(b.size(), a.size());
    // Every strict extraction also appears in the loose set.
    for (const ExtractedTuple& t : b) {
      EXPECT_TRUE(std::any_of(a.begin(), a.end(), [&](const ExtractedTuple& u) {
        return u.sentence_index == t.sentence_index;
      }));
    }
  }
}

TEST_F(ExtractionTest, SimilarityReportedAboveThreshold) {
  for (int64_t i = 0; i < std::min<int64_t>(scenario().corpus1->size(), 300); ++i) {
    const Document& doc = scenario().corpus1->document(static_cast<DocId>(i));
    for (const ExtractedTuple& t : extractor().Process(doc)) {
      EXPECT_GE(t.similarity, extractor().theta());
      EXPECT_LE(t.similarity, 1.0);
    }
  }
}

TEST_F(ExtractionTest, GoodMentionsSurviveMoreOftenThanBad) {
  // The affinity design means tp(θ) > fp(θ) at the default setting.
  int64_t good_planted = 0, good_kept = 0, bad_planted = 0, bad_kept = 0;
  for (const Document& doc : scenario().corpus1->documents()) {
    for (const PlantedMention& m : doc.mentions) {
      (m.is_good ? good_planted : bad_planted) += 1;
    }
    for (const ExtractedTuple& t : extractor().Process(doc)) {
      (t.ground_truth_good ? good_kept : bad_kept) += 1;
    }
  }
  ASSERT_GT(good_planted, 0);
  ASSERT_GT(bad_planted, 0);
  const double tp = static_cast<double>(good_kept) / good_planted;
  const double fp = static_cast<double>(bad_kept) / bad_planted;
  EXPECT_GT(tp, fp);
  EXPECT_GT(tp, 0.5);
  EXPECT_LT(fp, 0.7);
}

TEST_F(ExtractionTest, WithThetaValidatesAndPreservesPatterns) {
  const auto other = extractor().WithTheta(0.9);
  EXPECT_DOUBLE_EQ(other->theta(), 0.9);
  EXPECT_EQ(other->relation_name(), extractor().relation_name());
}

TEST_F(ExtractionTest, SimilarityOfPurePatternContextIsHigh) {
  const auto& pattern_vocab =
      scenario().corpus1->ground_truth().pattern_vocabulary;
  std::vector<TokenId> context(pattern_vocab.begin(),
                               pattern_vocab.begin() + std::min<size_t>(
                                                           8, pattern_vocab.size()));
  EXPECT_GT(extractor().Similarity(context), 0.6);
}

TEST_F(ExtractionTest, SimilarityOfEmptyContextIsZero) {
  EXPECT_DOUBLE_EQ(extractor().Similarity({}), 0.0);
}

TEST_F(ExtractionTest, WrongRelationSchemaFindsNothing) {
  // The HQ extractor (company, location) finds no candidates in the EX
  // corpus (company, person mentions).
  int64_t extracted = 0;
  const auto permissive = extractor().WithTheta(0.0);
  for (const Document& doc : scenario().corpus2->documents()) {
    extracted += static_cast<int64_t>(permissive->Process(doc).size());
  }
  EXPECT_EQ(extracted, 0);
}

// --------------------------------------------------------------------------
// Knob characterization
// --------------------------------------------------------------------------

TEST_F(ExtractionTest, CharacterizationAtZeroIsPerfectRecall) {
  auto knobs = CharacterizeExtractor(extractor(), *scenario().corpus1,
                                     UniformThetaGrid(11));
  ASSERT_TRUE(knobs.ok());
  EXPECT_DOUBLE_EQ(knobs->TruePositiveRate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(knobs->FalsePositiveRate(0.0), 1.0);
}

TEST_F(ExtractionTest, CharacterizationMonotoneInTheta) {
  auto knobs = CharacterizeExtractor(extractor(), *scenario().corpus1,
                                     UniformThetaGrid(21));
  ASSERT_TRUE(knobs.ok());
  for (size_t i = 1; i < knobs->thetas().size(); ++i) {
    EXPECT_LE(knobs->tp()[i], knobs->tp()[i - 1]);
    EXPECT_LE(knobs->fp()[i], knobs->fp()[i - 1]);
  }
}

TEST_F(ExtractionTest, CharacterizationTpDominatesFp) {
  auto knobs = CharacterizeExtractor(extractor(), *scenario().corpus1,
                                     UniformThetaGrid(11));
  ASSERT_TRUE(knobs.ok());
  for (size_t i = 0; i + 1 < knobs->thetas().size(); ++i) {
    EXPECT_GE(knobs->tp()[i], knobs->fp()[i]) << "theta=" << knobs->thetas()[i];
  }
}

TEST_F(ExtractionTest, CharacterizationInterpolates) {
  auto knobs = CharacterizeExtractor(extractor(), *scenario().corpus1,
                                     {0.0, 0.5, 1.0});
  ASSERT_TRUE(knobs.ok());
  const double mid = knobs->TruePositiveRate(0.25);
  EXPECT_LE(mid, knobs->TruePositiveRate(0.0));
  EXPECT_GE(mid, knobs->TruePositiveRate(0.5));
  // Outside the grid clamps to the ends.
  EXPECT_DOUBLE_EQ(knobs->TruePositiveRate(-1.0), knobs->TruePositiveRate(0.0));
  EXPECT_DOUBLE_EQ(knobs->TruePositiveRate(2.0), knobs->TruePositiveRate(1.0));
}

TEST_F(ExtractionTest, CharacterizationRejectsBadGrids) {
  EXPECT_FALSE(CharacterizeExtractor(extractor(), *scenario().corpus1, {}).ok());
  EXPECT_FALSE(
      CharacterizeExtractor(extractor(), *scenario().corpus1, {0.5, 0.1}).ok());
}

TEST(UniformThetaGridTest, EndpointsAndSpacing) {
  const auto grid = UniformThetaGrid(5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  EXPECT_DOUBLE_EQ(grid[1], 0.25);
}

}  // namespace
}  // namespace iejoin
