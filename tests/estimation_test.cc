// Tests for the Section VI parameter estimation: the thinned-power-law
// mixture MLE (EM good/bad split without a verification oracle), the
// relation-level estimator, and the join-overlap estimator.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distributions/power_law.h"
#include "estimation/join_estimator.h"
#include "estimation/mixture_mle.h"
#include "estimation/relation_estimator.h"

namespace iejoin {
namespace {

// --------------------------------------------------------------------------
// Thinned power-law PMF
// --------------------------------------------------------------------------

TEST(ThinnedPowerLawTest, SumsToOneWhenUntruncated) {
  const auto pmf = ThinnedPowerLawPmf(1.5, 50, 0.3, 50);
  double total = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ThinnedPowerLawTest, FullObservationRecoversPowerLaw) {
  // p = 1: the thinned distribution is the power law itself.
  const PowerLaw law(2.0, 30);
  const auto pmf = ThinnedPowerLawPmf(2.0, 30, 1.0, 30);
  for (int64_t k = 1; k <= 30; ++k) {
    EXPECT_NEAR(pmf[static_cast<size_t>(k)], law.Pmf(k), 1e-12);
  }
  EXPECT_NEAR(pmf[0], 0.0, 1e-12);
}

TEST(ThinnedPowerLawTest, ThinningShiftsMassDown) {
  const auto thick = ThinnedPowerLawPmf(1.5, 50, 0.9, 50);
  const auto thin = ThinnedPowerLawPmf(1.5, 50, 0.1, 50);
  // Less observation probability -> more mass at zero.
  EXPECT_GT(thin[0], thick[0]);
  double mean_thick = 0.0;
  double mean_thin = 0.0;
  for (size_t s = 0; s < thick.size(); ++s) {
    mean_thick += static_cast<double>(s) * thick[s];
    mean_thin += static_cast<double>(s) * thin[s];
  }
  EXPECT_NEAR(mean_thick / mean_thin, 9.0, 0.1);  // means scale with p
}

// --------------------------------------------------------------------------
// Mixture MLE
// --------------------------------------------------------------------------

struct SyntheticMixture {
  std::vector<int64_t> counts;
  std::vector<bool> truly_good;  // aligned
  int64_t hidden_good = 0;       // values never observed
  int64_t hidden_bad = 0;
};

SyntheticMixture MakeSynthetic(double alpha_good, double alpha_bad, int64_t n_good,
                               int64_t n_bad, double p_good, double p_bad,
                               int64_t max_freq, uint64_t seed) {
  SyntheticMixture out;
  Rng rng(seed);
  const PowerLaw good_law(alpha_good, max_freq);
  const PowerLaw bad_law(alpha_bad, max_freq);
  for (int64_t i = 0; i < n_good; ++i) {
    const int64_t f = good_law.Sample(&rng);
    const int64_t s = rng.Binomial(f, p_good);
    if (s > 0) {
      out.counts.push_back(s);
      out.truly_good.push_back(true);
    } else {
      ++out.hidden_good;
    }
  }
  for (int64_t i = 0; i < n_bad; ++i) {
    const int64_t f = bad_law.Sample(&rng);
    const int64_t s = rng.Binomial(f, p_bad);
    if (s > 0) {
      out.counts.push_back(s);
      out.truly_good.push_back(false);
    } else {
      ++out.hidden_bad;
    }
  }
  return out;
}

class MixtureRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MixtureRecoveryTest, RecoversPopulationsAndExponents) {
  // Good values: heavier frequencies (alpha 1.3) observed with p=0.5;
  // bad values: lighter (alpha 2.2) observed with p=0.2.
  //
  // The two-component split is only weakly identifiable when singleton
  // observations dominate (the good component is systematically
  // under-credited), so the assertions target what the estimator robustly
  // delivers: an accurate *total* population, the correct exponent
  // ordering, and a coarse (within small-factor) split.
  const SyntheticMixture data =
      MakeSynthetic(1.3, 2.2, 800, 1500, 0.5, 0.2, 200, GetParam());
  MixtureMleOptions options;
  options.max_frequency = 200;
  auto fit = FitGoodBadMixture(data.counts, 0.5, 0.2, options);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const double total = fit->good.estimated_population + fit->bad.estimated_population;
  EXPECT_NEAR(total, 2300.0, 0.30 * 2300.0);
  // Coarse split: each population within a factor of 3.5.
  EXPECT_GT(fit->good.estimated_population, 800.0 / 3.5);
  EXPECT_LT(fit->good.estimated_population, 800.0 * 3.5);
  EXPECT_GT(fit->bad.estimated_population, 1500.0 / 3.5);
  EXPECT_LT(fit->bad.estimated_population, 1500.0 * 3.5);
  // Exponent ordering recovered: good component heavier (smaller alpha).
  EXPECT_LT(fit->good.alpha, fit->bad.alpha);
}

TEST_P(MixtureRecoveryTest, PosteriorsSeparateClasses) {
  const SyntheticMixture data =
      MakeSynthetic(1.3, 2.2, 800, 1500, 0.5, 0.2, 200, GetParam() + 100);
  MixtureMleOptions options;
  options.max_frequency = 200;
  auto fit = FitGoodBadMixture(data.counts, 0.5, 0.2, options);
  ASSERT_TRUE(fit.ok());
  // Posterior-weighted classification should beat chance clearly.
  double auc_proxy_good = 0.0;
  int64_t n_good = 0;
  double auc_proxy_bad = 0.0;
  int64_t n_bad = 0;
  for (size_t i = 0; i < data.counts.size(); ++i) {
    if (data.truly_good[i]) {
      auc_proxy_good += fit->posterior_good[i];
      ++n_good;
    } else {
      auc_proxy_bad += fit->posterior_good[i];
      ++n_bad;
    }
  }
  ASSERT_GT(n_good, 0);
  ASSERT_GT(n_bad, 0);
  EXPECT_GT(auc_proxy_good / n_good, auc_proxy_bad / n_bad + 0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixtureRecoveryTest, ::testing::Values(11, 22, 33));

TEST(MixtureMleTest, RejectsInvalidInput) {
  MixtureMleOptions options;
  EXPECT_FALSE(FitGoodBadMixture({}, 0.5, 0.5, options).ok());
  EXPECT_FALSE(FitGoodBadMixture({1, 2}, 0.0, 0.5, options).ok());
  EXPECT_FALSE(FitGoodBadMixture({1, 2}, 0.5, 1.5, options).ok());
  EXPECT_FALSE(FitGoodBadMixture({0, 2}, 0.5, 0.5, options).ok());
}

TEST(MixtureMleTest, ObserveProbabilityConsistentWithTable) {
  const SyntheticMixture data = MakeSynthetic(1.5, 1.5, 1000, 1000, 0.6, 0.6, 100, 7);
  MixtureMleOptions options;
  options.max_frequency = 100;
  auto fit = FitGoodBadMixture(data.counts, 0.6, 0.6, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->good.observe_prob, 0.0);
  EXPECT_LE(fit->good.observe_prob, 1.0);
  // Total estimated population roughly matches 2000 planted values.
  EXPECT_NEAR(fit->good.estimated_population + fit->bad.estimated_population, 2000.0,
              700.0);
}

// --------------------------------------------------------------------------
// Relation estimator
// --------------------------------------------------------------------------

RelationObservation MakeObservation(uint64_t seed, double inclusion) {
  // Synthesize a database: 400 good values (alpha 1.4), 900 bad (alpha 2.0),
  // thinned by inclusion and knob rates tp=0.8 / fp=0.3.
  RelationObservation obs;
  obs.num_documents = 5000;
  obs.docs_processed = static_cast<int64_t>(inclusion * 5000);
  obs.tp = 0.8;
  obs.fp = 0.3;
  obs.good_inclusion = inclusion;
  obs.bad_inclusion = inclusion;
  Rng rng(seed);
  const PowerLaw good_law(1.4, 60);
  const PowerLaw bad_law(2.0, 120);
  TokenId next = 1;
  int64_t occurrences = 0;
  for (int i = 0; i < 400; ++i) {
    const int64_t s = rng.Binomial(good_law.Sample(&rng), 0.8 * inclusion);
    if (s > 0) {
      obs.values.push_back(next);
      obs.counts.push_back(s);
      occurrences += s;
    }
    ++next;
  }
  for (int i = 0; i < 900; ++i) {
    const int64_t s = rng.Binomial(bad_law.Sample(&rng), 0.3 * inclusion);
    if (s > 0) {
      obs.values.push_back(next);
      obs.counts.push_back(s);
      occurrences += s;
    }
    ++next;
  }
  obs.docs_with_extraction = std::min(obs.docs_processed, occurrences);
  return obs;
}

TEST(RelationEstimatorTest, EstimatesValuePopulations) {
  const RelationObservation obs = MakeObservation(5, 0.5);
  RelationEstimatorOptions options;
  options.mixture.max_frequency = 120;
  auto est = EstimateRelationParams(obs, options);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  const double total = static_cast<double>(est->params.num_good_values +
                                           est->params.num_bad_values);
  EXPECT_NEAR(total, 1300.0, 0.35 * 1300.0);
  EXPECT_GT(est->params.num_good_values, 400 / 4);
  EXPECT_LT(est->params.num_good_values, 400 * 4);
  EXPECT_GT(est->params.num_bad_values, 900 / 4);
  EXPECT_LT(est->params.num_bad_values, 900 * 4);
  EXPECT_GT(est->params.good_freq.mean, est->params.bad_freq.mean);
}

TEST(RelationEstimatorTest, MoreDataTightensDocEstimates) {
  RelationEstimatorOptions options;
  options.mixture.max_frequency = 120;
  auto est = EstimateRelationParams(MakeObservation(9, 0.6), options);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->params.num_good_docs, 0);
  EXPECT_LE(est->params.num_good_docs + est->params.num_bad_docs,
            est->params.num_documents);
}

TEST(RelationEstimatorTest, RejectsEmptyObservation) {
  RelationObservation obs;
  obs.num_documents = 100;
  obs.docs_processed = 10;
  EXPECT_FALSE(EstimateRelationParams(obs, RelationEstimatorOptions()).ok());
}

TEST(RelationEstimatorTest, RejectsMisalignedVectors) {
  RelationObservation obs = MakeObservation(1, 0.5);
  obs.values.pop_back();
  EXPECT_FALSE(EstimateRelationParams(obs, RelationEstimatorOptions()).ok());
}

// --------------------------------------------------------------------------
// Join estimator
// --------------------------------------------------------------------------

TEST(JoinEstimatorTest, OverlapScalesWithObservationProbability) {
  // Build two synthetic sides with a known overlap: values 1..100 good in
  // both, 101..160 good in 1 / bad in 2.
  RelationParamsEstimate side1;
  RelationParamsEstimate side2;
  std::vector<TokenId> values1;
  std::vector<TokenId> values2;
  auto fill = [](RelationParamsEstimate* side, std::vector<TokenId>* values,
                 int good_lo, int good_hi, int bad_lo, int bad_hi, double p_obs) {
    for (int v = good_lo; v <= good_hi; ++v) {
      values->push_back(static_cast<TokenId>(v));
      side->fit.posterior_good.push_back(0.95);
    }
    for (int v = bad_lo; v <= bad_hi; ++v) {
      values->push_back(static_cast<TokenId>(v));
      side->fit.posterior_good.push_back(0.05);
    }
    side->fit.good.observe_prob = p_obs;
    side->fit.bad.observe_prob = p_obs;
    side->fit.good.estimated_population = 500;
    side->fit.bad.estimated_population = 500;
  };
  // Side 1 observes good 1..100 and bad 200..259; side 2 observes good
  // 1..80 and bad 101..160.
  fill(&side1, &values1, 1, 100, 200, 259, 0.8);
  fill(&side2, &values2, 1, 80, 101, 160, 0.8);
  auto params = EstimateJoinParams(side1, side2, values1, values2,
                                   FrequencyCoupling::kIndependent);
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  // Observed good-good overlap is 80 values, each with posterior ~0.9;
  // scaled by 1/(0.8 * 0.8) ≈ 113.
  EXPECT_NEAR(static_cast<double>(params->num_agg), 80 * 0.95 * 0.95 / 0.64, 8.0);
  EXPECT_GT(params->num_agg, params->num_abg);
}

TEST(JoinEstimatorTest, NoOverlapGivesZero) {
  RelationParamsEstimate side1;
  RelationParamsEstimate side2;
  std::vector<TokenId> values1 = {1, 2, 3};
  std::vector<TokenId> values2 = {10, 11};
  side1.fit.posterior_good = {0.9, 0.9, 0.9};
  side2.fit.posterior_good = {0.9, 0.9};
  side1.fit.good.observe_prob = side1.fit.bad.observe_prob = 0.5;
  side2.fit.good.observe_prob = side2.fit.bad.observe_prob = 0.5;
  side1.fit.good.estimated_population = side1.fit.bad.estimated_population = 10;
  side2.fit.good.estimated_population = side2.fit.bad.estimated_population = 10;
  auto params = EstimateJoinParams(side1, side2, values1, values2,
                                   FrequencyCoupling::kIndependent);
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->num_agg, 0);
  EXPECT_EQ(params->num_abb, 0);
}

TEST(JoinEstimatorTest, OverlapCappedByPopulations) {
  RelationParamsEstimate side1;
  RelationParamsEstimate side2;
  std::vector<TokenId> values1;
  std::vector<TokenId> values2;
  for (int v = 1; v <= 50; ++v) {
    values1.push_back(static_cast<TokenId>(v));
    values2.push_back(static_cast<TokenId>(v));
    side1.fit.posterior_good.push_back(1.0);
    side2.fit.posterior_good.push_back(1.0);
  }
  // Tiny observe probabilities would naively scale 50 -> 5000.
  side1.fit.good.observe_prob = side1.fit.bad.observe_prob = 0.1;
  side2.fit.good.observe_prob = side2.fit.bad.observe_prob = 0.1;
  side1.fit.good.estimated_population = 60;
  side1.fit.bad.estimated_population = 60;
  side2.fit.good.estimated_population = 80;
  side2.fit.bad.estimated_population = 80;
  auto params = EstimateJoinParams(side1, side2, values1, values2,
                                   FrequencyCoupling::kIndependent);
  ASSERT_TRUE(params.ok());
  EXPECT_LE(params->num_agg, 60);
}

TEST(JoinEstimatorTest, RejectsMisalignedPosteriors) {
  RelationParamsEstimate side1;
  RelationParamsEstimate side2;
  std::vector<TokenId> values1 = {1};
  std::vector<TokenId> values2 = {1};
  side1.fit.posterior_good = {0.5, 0.5};  // mismatch
  side2.fit.posterior_good = {0.5};
  EXPECT_FALSE(EstimateJoinParams(side1, side2, values1, values2,
                                  FrequencyCoupling::kIndependent)
                   .ok());
}

// --------------------------------------------------------------------------
// Edge cases: degenerate corpora, knob extremes, fault-thinned samples
// --------------------------------------------------------------------------

TEST(JoinEstimatorEdgeTest, EmptyOverlapCalibratesToZeroLowerBound) {
  // Two healthy sides whose observed value sets are disjoint: the MLE's
  // overlap classes and the sketch's certified lower bound must both be
  // zero, and calibration must not flag or clamp anything upward.
  const RelationObservation obs1 = MakeObservation(21, 0.5);
  RelationObservation obs2 = MakeObservation(22, 0.5);
  TokenId shift = 100000;
  for (TokenId& value : obs2.values) value += shift;
  RelationEstimatorOptions options;
  options.mixture.max_frequency = 120;
  auto est1 = EstimateRelationParams(obs1, options);
  auto est2 = EstimateRelationParams(obs2, options);
  ASSERT_TRUE(est1.ok() && est2.ok());
  auto calibrated = EstimateJoinParamsCalibrated(
      *est1, *est2, obs1, obs2, FrequencyCoupling::kIndependent,
      CalibrationOptions());
  ASSERT_TRUE(calibrated.ok()) << calibrated.status().ToString();
  EXPECT_EQ(calibrated->params.num_agg, 0);
  EXPECT_EQ(calibrated->params.num_abb, 0);
  EXPECT_DOUBLE_EQ(calibrated->bounds.lower, 0.0);
  EXPECT_DOUBLE_EQ(calibrated->implied, 0.0);
  EXPECT_FALSE(calibrated->out_of_bounds);
}

TEST(RelationEstimatorEdgeTest, SingleDocumentCorpus) {
  // A one-document database, fully processed: everything observable was
  // observed. The estimator must stay finite and keep its document counts
  // within the database size.
  RelationObservation obs;
  obs.num_documents = 1;
  obs.docs_processed = 1;
  obs.docs_with_extraction = 1;
  obs.values = {1, 2, 3};
  obs.counts = {3, 1, 1};
  obs.good_inclusion = 1.0;
  obs.bad_inclusion = 1.0;
  obs.tp = 0.8;
  obs.fp = 0.3;
  auto est = EstimateRelationParams(obs, RelationEstimatorOptions());
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_GE(est->params.num_good_values + est->params.num_bad_values, 3);
  EXPECT_LE(est->params.num_good_docs, 1);
  EXPECT_LE(est->params.num_good_docs + est->params.num_bad_docs, 1);
  EXPECT_TRUE(std::isfinite(est->params.good_freq.mean));
  EXPECT_TRUE(std::isfinite(est->params.bad_freq.mean));
}

TEST(RelationEstimatorEdgeTest, ThetaExtremesStayFinite) {
  // θ -> 1: the knob extracts almost nothing (tp, fp ~ 0); the per-
  // occurrence observation probability hits the estimator's 1e-6 clamp.
  // θ -> 0: everything is emitted (tp = fp = 1). Both ends must produce
  // finite, in-range estimates rather than dividing by zero.
  for (const double rate : {1e-9, 1.0}) {
    RelationObservation obs = MakeObservation(33, 0.5);
    obs.tp = rate;
    obs.fp = rate;
    auto est = EstimateRelationParams(obs, RelationEstimatorOptions());
    ASSERT_TRUE(est.ok()) << "rate=" << rate << ": " << est.status().ToString();
    EXPECT_TRUE(std::isfinite(
        static_cast<double>(est->params.num_good_values)));
    EXPECT_GE(est->params.num_good_values, 0);
    EXPECT_GE(est->params.num_bad_values, 0);
    EXPECT_LE(est->params.num_good_docs + est->params.num_bad_docs,
              est->params.num_documents);
    EXPECT_TRUE(std::isfinite(est->params.good_freq.second_moment));
  }
}

TEST(RelationEstimatorEdgeTest, EffectiveCountsAfterFaultDrops) {
  // PR-2 regression: when faults drop documents, estimation must consume
  // effective (post-drop) counts — inclusion derives from the documents
  // that actually contributed extractions, not from the attempt volume.
  // With identical observed counts, claiming the *attempted* (higher)
  // inclusion says "we probed more and still saw this little", deflating
  // the population estimate; the effective inclusion must not estimate
  // fewer values than the attempted one.
  const RelationObservation base = MakeObservation(44, 0.3);
  RelationObservation attempted = base;  // pretends all 60% were processed
  attempted.docs_processed = static_cast<int64_t>(0.6 * 5000);
  attempted.good_inclusion = attempted.bad_inclusion = 0.6;
  RelationEstimatorOptions options;
  options.mixture.max_frequency = 120;
  auto effective_est = EstimateRelationParams(base, options);
  auto attempted_est = EstimateRelationParams(attempted, options);
  ASSERT_TRUE(effective_est.ok() && attempted_est.ok());
  EXPECT_GE(effective_est->params.num_good_values +
                effective_est->params.num_bad_values,
            attempted_est->params.num_good_values +
                attempted_est->params.num_bad_values);
}

}  // namespace
}  // namespace iejoin
