// Tests for scenario serialization: save/load round-trips, format
// validation, and ground-truth recomputation.

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "textdb/corpus_generator.h"
#include "textdb/corpus_io.h"
#include "textdb/text_database.h"

namespace iejoin {
namespace {

class CorpusIoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ScenarioSpec spec = ScenarioSpec::Small();
    spec.relation1.num_documents = 200;
    spec.relation2.num_documents = 200;
    CorpusGenerator generator(spec);
    auto result = generator.Generate();
    ASSERT_TRUE(result.ok());
    scenario_ = new JoinScenario(std::move(result.value()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }

  void SetUp() override {
    path_ = ::testing::TempDir() + "/scenario_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".iejoin";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static const JoinScenario& scenario() { return *scenario_; }

  std::string path_;
  static JoinScenario* scenario_;
};

JoinScenario* CorpusIoTest::scenario_ = nullptr;

TEST_F(CorpusIoTest, RoundTripsDocuments) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  auto loaded = LoadScenario(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->corpus1->size(), scenario().corpus1->size());
  ASSERT_EQ(loaded->corpus2->size(), scenario().corpus2->size());
  for (int64_t d = 0; d < scenario().corpus1->size(); ++d) {
    const Document& a = scenario().corpus1->document(static_cast<DocId>(d));
    const Document& b = loaded->corpus1->document(static_cast<DocId>(d));
    ASSERT_EQ(a.tokens, b.tokens) << "doc " << d;
    ASSERT_EQ(a.mentions.size(), b.mentions.size());
    for (size_t m = 0; m < a.mentions.size(); ++m) {
      EXPECT_EQ(a.mentions[m].join_value, b.mentions[m].join_value);
      EXPECT_EQ(a.mentions[m].second_value, b.mentions[m].second_value);
      EXPECT_EQ(a.mentions[m].sentence_index, b.mentions[m].sentence_index);
      EXPECT_EQ(a.mentions[m].is_good, b.mentions[m].is_good);
      EXPECT_NEAR(a.mentions[m].pattern_affinity, b.mentions[m].pattern_affinity,
                  1e-5);
    }
  }
}

TEST_F(CorpusIoTest, RoundTripsVocabulary) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  auto loaded = LoadScenario(path_);
  ASSERT_TRUE(loaded.ok());
  const Vocabulary& a = *scenario().vocabulary;
  const Vocabulary& b = *loaded->vocabulary;
  ASSERT_EQ(a.size(), b.size());
  for (TokenId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.Text(id), b.Text(id));
    EXPECT_EQ(a.Type(id), b.Type(id));
  }
}

TEST_F(CorpusIoTest, RoundTripsGroundTruthAndOverlaps) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  auto loaded = LoadScenario(path_);
  ASSERT_TRUE(loaded.ok());
  const RelationGroundTruth& a = scenario().corpus1->ground_truth();
  const RelationGroundTruth& b = loaded->corpus1->ground_truth();
  EXPECT_EQ(a.relation_name, b.relation_name);
  EXPECT_EQ(a.join_entity_type, b.join_entity_type);
  EXPECT_EQ(a.pattern_vocabulary, b.pattern_vocabulary);
  EXPECT_EQ(a.good_docs, b.good_docs);
  EXPECT_EQ(a.bad_docs, b.bad_docs);
  EXPECT_EQ(a.total_good_occurrences, b.total_good_occurrences);
  EXPECT_EQ(a.total_bad_occurrences, b.total_bad_occurrences);
  EXPECT_EQ(a.num_good_values, b.num_good_values);
  EXPECT_EQ(scenario().values_gg, loaded->values_gg);
  EXPECT_EQ(scenario().values_bb, loaded->values_bb);
}

TEST_F(CorpusIoTest, LoadedScenarioSupportsExtractionPipeline) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  auto loaded = LoadScenario(path_);
  ASSERT_TRUE(loaded.ok());
  // A database + query over the reloaded corpus behaves identically.
  TextDatabase original(scenario().corpus1, 7, 50);
  TextDatabase reloaded(loaded->corpus1, 7, 50);
  const TokenId value = scenario().values_gg.front();
  EXPECT_EQ(original.Query({value}), reloaded.Query({value}));
  EXPECT_EQ(original.CountMatches({value}), reloaded.CountMatches({value}));
}

TEST_F(CorpusIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadScenario("/nonexistent/path/file.iejoin").ok());
}

TEST_F(CorpusIoTest, RejectsWrongMagic) {
  std::ofstream out(path_);
  out << "NOT_A_SCENARIO 1\n";
  out.close();
  EXPECT_FALSE(LoadScenario(path_).ok());
}

TEST_F(CorpusIoTest, RejectsWrongVersion) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  // Rewrite the header with a bogus version.
  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents.replace(0, contents.find('\n'), "IEJOIN_SCENARIO 99");
  std::ofstream out(path_);
  out << contents;
  out.close();
  EXPECT_FALSE(LoadScenario(path_).ok());
}

TEST_F(CorpusIoTest, RejectsTruncatedFile) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  std::ifstream in(path_);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_);
  out << contents.substr(0, contents.size() / 2);
  out.close();
  EXPECT_FALSE(LoadScenario(path_).ok());
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
}

/// Replaces the whitespace-delimited field at `fields_after` positions past
/// the first occurrence of `marker` with `replacement`.
void CorruptField(std::string* contents, const std::string& marker,
                  int fields_after, const std::string& replacement) {
  size_t pos = contents->find(marker);
  ASSERT_NE(pos, std::string::npos) << "marker not found: " << marker;
  pos += marker.size();
  for (int i = 0; i < fields_after; ++i) {
    pos = contents->find_first_of(" \n", pos);
    ASSERT_NE(pos, std::string::npos);
    ++pos;
  }
  const size_t end = contents->find_first_of(" \n", pos);
  ASSERT_NE(end, std::string::npos);
  contents->replace(pos, end - pos, replacement);
}

// A corrupt count field far beyond any plausible scenario must fail
// cleanly instead of attempting a multi-gigabyte resize.
TEST_F(CorpusIoTest, RejectsAbsurdPatternCount) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  std::string contents = ReadAll(path_);
  CorruptField(&contents, "\npatterns ", 0, "99999999999999999");
  WriteAll(path_, contents);
  EXPECT_FALSE(LoadScenario(path_).ok());
}

TEST_F(CorpusIoTest, RejectsAbsurdTokenCount) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  std::string contents = ReadAll(path_);
  // "doc <id> <tokens> <mentions>": blow up the token count of doc 0.
  CorruptField(&contents, "\ndoc 0 ", 0, "99999999999999999");
  WriteAll(path_, contents);
  EXPECT_FALSE(LoadScenario(path_).ok());
}

// Negative counts wrap through unsigned stream parsing into huge values;
// the sanity cap must catch them too.
TEST_F(CorpusIoTest, RejectsNegativeOverlapCount) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  std::string contents = ReadAll(path_);
  CorruptField(&contents, "\ngg ", 0, "-5");
  WriteAll(path_, contents);
  EXPECT_FALSE(LoadScenario(path_).ok());
}

TEST_F(CorpusIoTest, RejectsOutOfVocabularyOverlapValue) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  ASSERT_FALSE(scenario().values_gg.empty());
  std::string contents = ReadAll(path_);
  CorruptField(&contents, "\ngg ", 1, "987654321");
  WriteAll(path_, contents);
  EXPECT_FALSE(LoadScenario(path_).ok());
}

TEST_F(CorpusIoTest, RejectsOutOfVocabularyMentionValue) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  std::string contents = ReadAll(path_);
  CorruptField(&contents, "\nmention ", 0, "987654321");
  WriteAll(path_, contents);
  EXPECT_FALSE(LoadScenario(path_).ok());
}

TEST_F(CorpusIoTest, RejectsTrailingGarbage) {
  ASSERT_TRUE(SaveScenario(scenario(), path_).ok());
  std::string contents = ReadAll(path_);
  contents += "EXTRA 1 2 3\n";
  WriteAll(path_, contents);
  EXPECT_FALSE(LoadScenario(path_).ok());
}

TEST(RecomputeGroundTruthTest, RebuildsFromMentions) {
  auto vocab = std::make_shared<Vocabulary>();
  const TokenId company = vocab->Intern("acme", TokenType::kCompany);
  const TokenId loc = vocab->Intern("paris", TokenType::kLocation);
  Corpus corpus("test", vocab);
  Document good_doc;
  good_doc.id = 0;
  good_doc.tokens = {company, loc, Vocabulary::kSentenceEnd};
  good_doc.mentions.push_back(PlantedMention{company, loc, 0, true, 0.9f});
  Document empty_doc;
  empty_doc.id = 1;
  empty_doc.tokens = {Vocabulary::kSentenceEnd};
  corpus.mutable_documents()->push_back(good_doc);
  corpus.mutable_documents()->push_back(empty_doc);
  RecomputeGroundTruthStats(&corpus);
  const RelationGroundTruth& truth = corpus.ground_truth();
  EXPECT_EQ(truth.good_docs.size(), 1u);
  EXPECT_EQ(truth.empty_docs.size(), 1u);
  EXPECT_EQ(truth.total_good_occurrences, 1);
  EXPECT_EQ(truth.num_good_values, 1);
  EXPECT_EQ(truth.num_bad_values, 0);
}

}  // namespace
}  // namespace iejoin
