// Tests for the Section V analytical models: single-relation document
// sampling, per-occurrence extraction factors, the general join-composition
// scheme, per-algorithm join models, and the agreement between the
// closed-form means and the full distributional forms.

#include <cmath>

#include <gtest/gtest.h>

#include "distributions/hypergeometric.h"
#include "model/join_models.h"
#include "model/join_quality_model.h"
#include "model/model_params.h"
#include "model/single_relation_model.h"

namespace iejoin {
namespace {

RelationModelParams MakeRelation() {
  RelationModelParams r;
  r.num_documents = 1000;
  r.num_good_docs = 300;
  r.num_bad_docs = 350;
  r.num_good_values = 80;
  r.num_bad_values = 120;
  r.good_freq.mean = 4.0;
  r.good_freq.second_moment = 30.0;
  r.bad_freq.mean = 6.0;
  r.bad_freq.second_moment = 90.0;
  r.bad_in_good_doc_fraction = 0.4;
  r.tp = 0.8;
  r.fp = 0.3;
  r.classifier_tp = 0.9;
  r.classifier_fp = 0.2;
  r.classifier_empty = 0.05;
  r.classifier_good_occ = 0.92;
  r.classifier_bad_occ = 0.45;
  for (int i = 0; i < 10; ++i) {
    AqgQueryStat q;
    q.precision = 0.6;
    q.retrieved_docs = 40.0;
    r.aqg_queries.push_back(q);
  }
  r.mean_query_hits = 12.0;
  r.mean_direct_inclusion = 0.9;
  return r;
}

JoinModelParams MakeJoin() {
  JoinModelParams p;
  p.relation1 = MakeRelation();
  p.relation2 = MakeRelation();
  p.num_agg = 40;
  p.num_agb = 20;
  p.num_abg = 20;
  p.num_abb = 60;
  return p;
}

// --------------------------------------------------------------------------
// Scan factors
// --------------------------------------------------------------------------

TEST(ScanFactorsTest, ZeroEffortMeansNothingExtracted) {
  const OccurrenceFactors f = ScanFactors(MakeRelation(), 0);
  EXPECT_DOUBLE_EQ(f.good_occurrence, 0.0);
  EXPECT_DOUBLE_EQ(f.bad_occurrence, 0.0);
  EXPECT_DOUBLE_EQ(f.docs_processed, 0.0);
}

TEST(ScanFactorsTest, FullScanYieldsKnobRates) {
  // With every document processed, a good occurrence survives with exactly
  // tp(θ) and a bad one with fp(θ).
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors f = ScanFactors(r, r.num_documents);
  EXPECT_NEAR(f.good_occurrence, r.tp, 1e-12);
  EXPECT_NEAR(f.bad_occurrence, r.fp, 1e-12);
  EXPECT_DOUBLE_EQ(f.docs_processed, static_cast<double>(r.num_documents));
}

TEST(ScanFactorsTest, LinearInEffort) {
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors half = ScanFactors(r, 500);
  const OccurrenceFactors full = ScanFactors(r, 1000);
  EXPECT_NEAR(half.good_occurrence, full.good_occurrence / 2.0, 1e-12);
  EXPECT_NEAR(half.bad_occurrence, full.bad_occurrence / 2.0, 1e-12);
}

TEST(ScanFactorsTest, EffortClampedAtDatabaseSize) {
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors f = ScanFactors(r, 10 * r.num_documents);
  EXPECT_DOUBLE_EQ(f.docs_retrieved, static_cast<double>(r.num_documents));
}

TEST(ScanFactorsTest, SecondsFollowCostModel) {
  CostModel costs;
  costs.retrieve_seconds = 2.0;
  costs.extract_seconds = 5.0;
  const OccurrenceFactors f = ScanFactors(MakeRelation(), 100);
  EXPECT_NEAR(f.Seconds(costs), 100 * 2.0 + 100 * 5.0, 1e-9);
}

// --------------------------------------------------------------------------
// Filtered Scan factors
// --------------------------------------------------------------------------

TEST(FilteredScanFactorsTest, UsesOccurrenceWeightedRates) {
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors f = FilteredScanFactors(r, r.num_documents);
  EXPECT_NEAR(f.good_occurrence, r.tp * r.classifier_good_occ, 1e-12);
  EXPECT_NEAR(f.bad_occurrence, r.fp * r.classifier_bad_occ, 1e-12);
}

TEST(FilteredScanFactorsTest, ProcessesFewerDocsThanScan) {
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors fs = FilteredScanFactors(r, 1000);
  const OccurrenceFactors sc = ScanFactors(r, 1000);
  EXPECT_LT(fs.docs_processed, sc.docs_processed);
  EXPECT_DOUBLE_EQ(fs.docs_filtered, 1000.0);
  EXPECT_DOUBLE_EQ(sc.docs_filtered, 0.0);
}

TEST(FilteredScanFactorsTest, ProcessedMatchesClassMix) {
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors f = FilteredScanFactors(r, 1000);
  const double expected = 300 * 0.9 + 350 * 0.2 + 350 * 0.05;
  EXPECT_NEAR(f.docs_processed, expected, 1e-9);
}

// --------------------------------------------------------------------------
// AQG factors
// --------------------------------------------------------------------------

TEST(AqgFactorsTest, ZeroQueriesNothing) {
  const OccurrenceFactors f = AqgFactors(MakeRelation(), 0);
  EXPECT_DOUBLE_EQ(f.good_occurrence, 0.0);
  EXPECT_DOUBLE_EQ(f.docs_retrieved, 0.0);
}

TEST(AqgFactorsTest, CoverageGrowsWithQueries) {
  const RelationModelParams r = MakeRelation();
  double prev = 0.0;
  for (int q = 1; q <= 10; ++q) {
    const OccurrenceFactors f = AqgFactors(r, q);
    EXPECT_GT(f.good_occurrence, prev);
    prev = f.good_occurrence;
  }
}

TEST(AqgFactorsTest, Equation2SingleQuery) {
  // One query: Pr_g(d) = P(q) g(q) / |Dg|.
  RelationModelParams r = MakeRelation();
  r.aqg_good_occ_boost = 1.0;
  r.aqg_bad_occ_boost = 1.0;
  const OccurrenceFactors f = AqgFactors(r, 1);
  const double pr_good = 0.6 * 40.0 / 300.0;
  EXPECT_NEAR(f.good_occurrence, r.tp * pr_good, 1e-9);
}

TEST(AqgFactorsTest, QueriesClampedToAvailable) {
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors f10 = AqgFactors(r, 10);
  const OccurrenceFactors f99 = AqgFactors(r, 99);
  EXPECT_DOUBLE_EQ(f10.good_occurrence, f99.good_occurrence);
  EXPECT_DOUBLE_EQ(f99.queries_issued, 10.0);
}

TEST(AqgFactorsTest, NeverReachesFullScanRecall) {
  const RelationModelParams r = MakeRelation();
  const OccurrenceFactors aqg = AqgFactors(r, 10);
  const OccurrenceFactors scan = ScanFactors(r, r.num_documents);
  EXPECT_LT(aqg.good_occurrence, scan.good_occurrence);
}

TEST(AqgFactorsTest, BoostScalesOccurrenceInclusion) {
  RelationModelParams r = MakeRelation();
  r.aqg_good_occ_boost = 1.0;
  const double base = AqgFactors(r, 5).good_occurrence;
  r.aqg_good_occ_boost = 1.3;
  EXPECT_NEAR(AqgFactors(r, 5).good_occurrence, base * 1.3, 1e-9);
}

// --------------------------------------------------------------------------
// Distributional forms vs closed-form means
// --------------------------------------------------------------------------

TEST(DistributionalModelTest, ScanGoodDocsDistributionMatchesHypergeometric) {
  const RelationModelParams r = MakeRelation();
  auto dist = ScanGoodDocsDistribution(r, 200);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->Mean(), hypergeometric::Mean(1000, 200, 300), 1e-6);
  double total = 0.0;
  for (int64_t j = 0; j <= dist->max_value(); ++j) total += dist->Pmf(j);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(DistributionalModelTest, FilteredScanComposesClassifier) {
  const RelationModelParams r = MakeRelation();
  auto dist = FilteredScanGoodDocsDistribution(r, 200);
  ASSERT_TRUE(dist.ok());
  // Mean: hypergeometric mean thinned by C_tp.
  EXPECT_NEAR(dist->Mean(), hypergeometric::Mean(1000, 200, 300) * r.classifier_tp,
              1e-6);
}

TEST(DistributionalModelTest, ExtractedFrequencyMeanIsClosedForm) {
  // The paper's E[gr | |Dgr| = j] double sum collapses to tp * j * g / |Dg|.
  const RelationModelParams r = MakeRelation();
  for (int64_t g : {1, 3, 8}) {
    for (int64_t j : {10, 50, 150}) {
      auto dist = ExtractedFrequencyDistribution(r, j, g);
      ASSERT_TRUE(dist.ok());
      const double closed_form = r.tp * static_cast<double>(j) *
                                 static_cast<double>(g) /
                                 static_cast<double>(r.num_good_docs);
      EXPECT_NEAR(dist->Mean(), closed_form, 1e-9) << "g=" << g << " j=" << j;
    }
  }
}

TEST(DistributionalModelTest, ExtractedFrequencyZeroProcessed) {
  const RelationModelParams r = MakeRelation();
  auto dist = ExtractedFrequencyDistribution(r, 0, 5);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(dist->Pmf(0), 1.0, 1e-12);
}

TEST(DistributionalModelTest, RejectsInconsistentArguments) {
  RelationModelParams r = MakeRelation();
  EXPECT_FALSE(ExtractedFrequencyDistribution(r, -1, 5).ok());
  EXPECT_FALSE(ExtractedFrequencyDistribution(r, r.num_good_docs + 1, 5).ok());
  r.num_good_docs = 2000;  // > num_documents
  EXPECT_FALSE(ScanGoodDocsDistribution(r, 10).ok());
}

// --------------------------------------------------------------------------
// Join composition (general scheme)
// --------------------------------------------------------------------------

TEST(ComposeJoinTest, GoodTuplesFollowEquation1) {
  const JoinModelParams p = MakeJoin();
  OccurrenceFactors f1;
  f1.good_occurrence = 0.5;
  f1.bad_occurrence = 0.2;
  OccurrenceFactors f2;
  f2.good_occurrence = 0.4;
  f2.bad_occurrence = 0.1;
  const QualityEstimate est = ComposeJoin(p, f1, f2, CostModel(), CostModel());
  // E[good] = |Agg| * (f1g * E[g1]) * (f2g * E[g2])
  EXPECT_NEAR(est.expected_good, 40 * (0.5 * 4.0) * (0.4 * 4.0), 1e-9);
}

TEST(ComposeJoinTest, BadTuplesSumThreeClasses) {
  const JoinModelParams p = MakeJoin();
  OccurrenceFactors f1;
  f1.good_occurrence = 0.5;
  f1.bad_occurrence = 0.2;
  OccurrenceFactors f2;
  f2.good_occurrence = 0.4;
  f2.bad_occurrence = 0.1;
  const QualityEstimate est = ComposeJoin(p, f1, f2, CostModel(), CostModel());
  const double j_gb = 20 * (0.5 * 4.0) * (0.1 * 6.0);
  const double j_bg = 20 * (0.2 * 6.0) * (0.4 * 4.0);
  const double j_bb = 60 * (0.2 * 6.0) * (0.1 * 6.0);
  EXPECT_NEAR(est.expected_bad, j_gb + j_bg + j_bb, 1e-9);
}

TEST(ComposeJoinTest, IdenticalCouplingUsesSecondMoments) {
  JoinModelParams p = MakeJoin();
  p.coupling = FrequencyCoupling::kIdentical;
  OccurrenceFactors f;
  f.good_occurrence = 1.0;
  f.bad_occurrence = 1.0;
  const QualityEstimate est = ComposeJoin(p, f, f, CostModel(), CostModel());
  EXPECT_NEAR(est.expected_good, 40 * 30.0, 1e-9);  // |Agg| * E[g^2]
}

TEST(ComposeJoinTest, CoupledPairMeanModes) {
  FrequencyMoments a{3.0, 15.0};
  FrequencyMoments b{5.0, 40.0};
  EXPECT_NEAR(CoupledPairMean(a, b, FrequencyCoupling::kIndependent), 15.0, 1e-12);
  EXPECT_NEAR(CoupledPairMean(a, b, FrequencyCoupling::kIdentical),
              std::sqrt(15.0 * 40.0), 1e-12);
}

TEST(ComposeJoinTest, TimeSumsBothSides) {
  const JoinModelParams p = MakeJoin();
  OccurrenceFactors f1;
  f1.docs_retrieved = 10;
  f1.docs_processed = 10;
  OccurrenceFactors f2;
  f2.docs_retrieved = 20;
  f2.docs_processed = 20;
  f2.queries_issued = 5;
  CostModel costs;
  costs.retrieve_seconds = 1.0;
  costs.extract_seconds = 2.0;
  costs.query_seconds = 3.0;
  const QualityEstimate est = ComposeJoin(p, f1, f2, costs, costs);
  EXPECT_NEAR(est.seconds, (10 + 20) * 1.0 + (10 + 20) * 2.0 + 5 * 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(est.queries2, 5.0);
}

// --------------------------------------------------------------------------
// Per-algorithm models
// --------------------------------------------------------------------------

TEST(EstimateIdjnTest, MonotoneInEffort) {
  const JoinModelParams p = MakeJoin();
  double prev_good = -1.0;
  double prev_bad = -1.0;
  for (int64_t effort : {100, 300, 600, 1000}) {
    const QualityEstimate est =
        EstimateIdjn(p, RetrievalStrategyKind::kScan, RetrievalStrategyKind::kScan,
                     PlanEffort{effort, effort}, CostModel(), CostModel());
    EXPECT_GT(est.expected_good, prev_good);
    EXPECT_GT(est.expected_bad, prev_bad);
    prev_good = est.expected_good;
    prev_bad = est.expected_bad;
  }
}

TEST(EstimateIdjnTest, MixedStrategies) {
  const JoinModelParams p = MakeJoin();
  const QualityEstimate est = EstimateIdjn(
      p, RetrievalStrategyKind::kFilteredScan,
      RetrievalStrategyKind::kAutomaticQueryGeneration, PlanEffort{1000, 10},
      CostModel(), CostModel());
  EXPECT_GT(est.expected_good, 0.0);
  EXPECT_GT(est.queries2, 0.0);
  EXPECT_DOUBLE_EQ(est.queries1, 0.0);
}

TEST(EstimateOijnTest, InnerEffortFollowsOuterExtraction) {
  const JoinModelParams p = MakeJoin();
  const QualityEstimate small = EstimateOijn(p, true, RetrievalStrategyKind::kScan,
                                             100, CostModel(), CostModel());
  const QualityEstimate large = EstimateOijn(p, true, RetrievalStrategyKind::kScan,
                                             1000, CostModel(), CostModel());
  EXPECT_GT(large.queries2, small.queries2);
  EXPECT_GT(large.expected_good, small.expected_good);
  EXPECT_GT(large.docs_retrieved2, small.docs_retrieved2);
}

TEST(EstimateOijnTest, OuterSideSwaps) {
  const JoinModelParams p = MakeJoin();
  const QualityEstimate r1_outer = EstimateOijn(p, true, RetrievalStrategyKind::kScan,
                                                500, CostModel(), CostModel());
  const QualityEstimate r2_outer = EstimateOijn(p, false, RetrievalStrategyKind::kScan,
                                                500, CostModel(), CostModel());
  EXPECT_GT(r1_outer.queries2, 0.0);
  EXPECT_DOUBLE_EQ(r1_outer.queries1, 0.0);
  EXPECT_GT(r2_outer.queries1, 0.0);
  EXPECT_DOUBLE_EQ(r2_outer.queries2, 0.0);
}

TEST(EstimateOijnTest, TopKLimitsInnerRecall) {
  JoinModelParams p = MakeJoin();
  p.relation2.mean_direct_inclusion = 1.0;
  const QualityEstimate unlimited = EstimateOijn(
      p, true, RetrievalStrategyKind::kScan, 1000, CostModel(), CostModel());
  p.relation2.mean_direct_inclusion = 0.3;
  const QualityEstimate limited = EstimateOijn(
      p, true, RetrievalStrategyKind::kScan, 1000, CostModel(), CostModel());
  EXPECT_LT(limited.expected_good, unlimited.expected_good);
}

GeneratingFunction MakePgf(std::vector<double> pmf) {
  auto f = GeneratingFunction::FromPmf(std::move(pmf));
  EXPECT_TRUE(f.ok());
  return f.value();
}

JoinModelParams MakeZgjnJoin() {
  JoinModelParams p = MakeJoin();
  // Hits: mean 3; generates: mean 1.2.
  p.relation1.hits_pgf = MakePgf({0.1, 0.2, 0.3, 0.4});
  p.relation1.generates_pgf = MakePgf({0.3, 0.3, 0.3, 0.1});
  p.relation2.hits_pgf = MakePgf({0.1, 0.2, 0.3, 0.4});
  p.relation2.generates_pgf = MakePgf({0.3, 0.3, 0.3, 0.1});
  return p;
}

TEST(SimulateZgjnTest, ProducesMonotoneSeries) {
  const std::vector<ZgjnModelPoint> points =
      SimulateZgjn(MakeZgjnJoin(), 4, 32, CostModel(), CostModel());
  ASSERT_FALSE(points.empty());
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].docs1 + points[i].docs2,
              points[i - 1].docs1 + points[i - 1].docs2);
    EXPECT_GE(points[i].queries1 + points[i].queries2,
              points[i - 1].queries1 + points[i - 1].queries2);
    EXPECT_GE(points[i].estimate.expected_good,
              points[i - 1].estimate.expected_good - 1e-9);
  }
}

TEST(SimulateZgjnTest, SaturatesAtDatabaseSize) {
  const std::vector<ZgjnModelPoint> points =
      SimulateZgjn(MakeZgjnJoin(), 4, 64, CostModel(), CostModel());
  ASSERT_FALSE(points.empty());
  EXPECT_LE(points.back().docs1, 1000.0 + 1e-6);
  EXPECT_LE(points.back().docs2, 1000.0 + 1e-6);
}

TEST(SimulateZgjnTest, QueriesBoundedByValueUniverse) {
  const std::vector<ZgjnModelPoint> points =
      SimulateZgjn(MakeZgjnJoin(), 4, 64, CostModel(), CostModel());
  // Distinct-value queries cannot exceed the value universe (plus seeds).
  const double universe = 80 + 120;
  EXPECT_LE(points.back().queries1, universe + 4 + 1e-6);
  EXPECT_LE(points.back().queries2, universe + 1e-6);
}

TEST(ZgjnReachabilityTest, SupercriticalGraphSurvives) {
  const JoinModelParams p = MakeZgjnJoin();
  const ZgjnReachability reach = AnalyzeZgjnReachability(p, 4);
  EXPECT_GT(reach.cycle_branching_factor, 1.0);
  EXPECT_LT(reach.extinction_probability, 1.0);
  EXPECT_GT(reach.survival_probability, 0.5);
}

TEST(ZgjnReachabilityTest, SubcriticalGraphGoesExtinct) {
  JoinModelParams p = MakeZgjnJoin();
  // Hits mostly zero: the traversal dies out (mean offspring << 1).
  p.relation1.hits_pgf = MakePgf({0.9, 0.1});
  p.relation1.generates_pgf = MakePgf({0.9, 0.1});
  p.relation2.hits_pgf = MakePgf({0.9, 0.1});
  p.relation2.generates_pgf = MakePgf({0.9, 0.1});
  const ZgjnReachability reach = AnalyzeZgjnReachability(p, 2);
  EXPECT_LT(reach.cycle_branching_factor, 1.0);
  EXPECT_NEAR(reach.extinction_probability, 1.0, 1e-6);
  EXPECT_NEAR(reach.survival_probability, 0.0, 1e-6);
}

TEST(ZgjnReachabilityTest, MoreSeedsImproveSurvival) {
  JoinModelParams p = MakeZgjnJoin();
  // Critical-ish graph so per-lineage extinction is non-trivial.
  p.relation1.hits_pgf = MakePgf({0.4, 0.3, 0.3});
  p.relation1.generates_pgf = MakePgf({0.3, 0.4, 0.3});
  p.relation2.hits_pgf = MakePgf({0.4, 0.3, 0.3});
  p.relation2.generates_pgf = MakePgf({0.3, 0.4, 0.3});
  const ZgjnReachability one = AnalyzeZgjnReachability(p, 1);
  const ZgjnReachability many = AnalyzeZgjnReachability(p, 8);
  ASSERT_GT(one.extinction_probability, 0.0);
  ASSERT_LT(one.extinction_probability, 1.0);
  EXPECT_GT(many.survival_probability, one.survival_probability);
}

TEST(ZgjnReachabilityTest, DegenerateGraphDiesImmediately) {
  JoinModelParams p = MakeZgjnJoin();
  p.relation1.hits_pgf = MakePgf({1.0});  // no edges at all
  const ZgjnReachability reach = AnalyzeZgjnReachability(p, 4);
  EXPECT_DOUBLE_EQ(reach.extinction_probability, 1.0);
  EXPECT_DOUBLE_EQ(reach.survival_probability, 0.0);
}

TEST(ZgjnReachabilityTest, ExtinctionIsFixedPoint) {
  const JoinModelParams p = MakeZgjnJoin();
  const ZgjnReachability reach = AnalyzeZgjnReachability(p, 1);
  const double q = reach.extinction_probability;
  const double inner =
      p.relation2.hits_pgf.Evaluate(p.relation2.generates_pgf.Evaluate(q));
  EXPECT_NEAR(p.relation1.hits_pgf.Evaluate(p.relation1.generates_pgf.Evaluate(inner)),
              q, 1e-9);
}

TEST(SimulateZgjnStallAwareTest, SubcriticalReachCollapses) {
  JoinModelParams p = MakeZgjnJoin();
  p.relation1.hits_pgf = MakePgf({0.9, 0.1});
  p.relation1.generates_pgf = MakePgf({0.9, 0.1});
  p.relation2.hits_pgf = MakePgf({0.9, 0.1});
  p.relation2.generates_pgf = MakePgf({0.9, 0.1});
  const auto no_stall = SimulateZgjn(p, 4, 64, CostModel(), CostModel());
  const auto stall = SimulateZgjnStallAware(p, 4, 64, CostModel(), CostModel());
  ASSERT_FALSE(no_stall.empty());
  ASSERT_FALSE(stall.empty());
  // The stall-aware prediction reaches essentially nothing, and never more
  // than the no-stall optimism.
  EXPECT_LT(stall.back().docs1 + stall.back().docs2, 0.01);
  EXPECT_LE(stall.back().docs1 + stall.back().docs2,
            no_stall.back().docs1 + no_stall.back().docs2 + 1e-9);
}

TEST(SimulateZgjnStallAwareTest, SupercriticalMatchesNoStallClosely) {
  const JoinModelParams p = MakeZgjnJoin();
  const auto no_stall = SimulateZgjn(p, 6, 64, CostModel(), CostModel());
  const auto stall = SimulateZgjnStallAware(p, 6, 64, CostModel(), CostModel());
  ASSERT_FALSE(no_stall.empty());
  ASSERT_FALSE(stall.empty());
  const double reach_ratio = (stall.back().docs1 + stall.back().docs2) /
                             (no_stall.back().docs1 + no_stall.back().docs2);
  EXPECT_GT(reach_ratio, 0.8);
}

TEST(EstimateZgjnTest, RespectsQueryBudget) {
  const JoinModelParams p = MakeZgjnJoin();
  const QualityEstimate small = EstimateZgjn(p, 4, 10, CostModel(), CostModel());
  const QualityEstimate large = EstimateZgjn(p, 4, 10000, CostModel(), CostModel());
  EXPECT_LE(small.queries1 + small.queries2, 10.0 + 1e-9);
  EXPECT_GE(large.expected_good, small.expected_good);
}

TEST(StrategyFactorsTest, DispatchAndMaxEffort) {
  const RelationModelParams r = MakeRelation();
  EXPECT_EQ(MaxEffort(r, RetrievalStrategyKind::kScan), r.num_documents);
  EXPECT_EQ(MaxEffort(r, RetrievalStrategyKind::kFilteredScan), r.num_documents);
  EXPECT_EQ(MaxEffort(r, RetrievalStrategyKind::kAutomaticQueryGeneration), 10);
  const OccurrenceFactors scan =
      StrategyFactors(r, RetrievalStrategyKind::kScan, 100);
  EXPECT_DOUBLE_EQ(scan.docs_filtered, 0.0);
  const OccurrenceFactors fs =
      StrategyFactors(r, RetrievalStrategyKind::kFilteredScan, 100);
  EXPECT_DOUBLE_EQ(fs.docs_filtered, 100.0);
}

}  // namespace
}  // namespace iejoin
