// Tests for the telemetry subsystem (src/obs): metrics registry, span
// tracer, JSON serialization, run reports — and the guard test proving that
// attaching telemetry to a join execution does not perturb it.

#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/workbench.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace iejoin {
namespace {

// --------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker (test-only): enough to
// prove the serializers emit well-formed documents without a JSON library.
// --------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) { return JsonChecker(text).Valid(); }

// --------------------------------------------------------------------------
// JsonWriter
// --------------------------------------------------------------------------

TEST(JsonWriterTest, WritesNestedStructures) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("a").Value(int64_t{1});
  json.Key("b").BeginArray();
  json.Value("x");
  json.Value(2.5);
  json.Value(true);
  json.Null();
  json.EndArray();
  json.Key("c").BeginObject();
  json.EndObject();
  json.EndObject();
  EXPECT_EQ(json.str(), R"({"a":1,"b":["x",2.5,true,null],"c":{}})");
  EXPECT_TRUE(IsValidJson(json.str()));
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("s").Value("quote\" slash\\ nl\n tab\t ctrl\x01");
  json.EndObject();
  EXPECT_EQ(json.str(),
            "{\"s\":\"quote\\\" slash\\\\ nl\\n tab\\t ctrl\\u0001\"}");
  EXPECT_TRUE(IsValidJson(json.str()));
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter json;
  json.BeginArray();
  json.Value(std::numeric_limits<double>::infinity());
  json.Value(std::nan(""));
  json.EndArray();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriterTest, EveryControlCharacterEscapes) {
  // All of C0 must come out as an escape (named or \u00XX) — a raw control
  // byte would break line-oriented consumers like `iejoin_cli tail`.
  std::string raw;
  for (char c = 1; c < 0x20; ++c) raw.push_back(c);
  obs::JsonWriter json;
  json.BeginArray();
  json.Value(raw);
  json.EndArray();
  const std::string& out = json.str();
  for (char c = 1; c < 0x20; ++c) {
    EXPECT_EQ(out.find(c), std::string::npos)
        << "control byte " << static_cast<int>(c) << " emitted raw";
  }
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("\\u001f"), std::string::npos);
  EXPECT_TRUE(IsValidJson(out)) << out;
}

TEST(JsonWriterTest, Utf8MultibytePassesThroughVerbatim) {
  // High bytes are not control characters; UTF-8 sequences must survive
  // untouched (JSON strings are Unicode text, no escaping required).
  const std::string utf8 = "caf\xc3\xa9 \xe2\x8b\x88 \xf0\x9f\x94\x8d";
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("s").Value(utf8);
  json.EndObject();
  EXPECT_EQ(json.str(), "{\"s\":\"" + utf8 + "\"}");
  EXPECT_TRUE(IsValidJson(json.str()));
}

// --------------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  obs::Gauge g;
  g.Set(1.5);
  g.Set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 0
  h.Observe(3.0);   // bucket 2 (<= 4)
  h.Observe(100.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 0);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);  // overflow bucket
}

TEST(MetricsTest, ExponentialBounds) {
  const std::vector<double> bounds = obs::Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.counter("x");
  a->Increment(7);
  EXPECT_EQ(registry.counter("x"), a);
  EXPECT_EQ(registry.counter("x")->value(), 7);
  EXPECT_NE(registry.counter("y"), a);

  obs::Histogram* h = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(registry.histogram("h", {99.0}), h);  // bounds fixed at creation
  EXPECT_EQ(h->upper_bounds().size(), 2u);
}

TEST(MetricsTest, SnapshotCapturesEverything) {
  obs::MetricsRegistry registry;
  registry.counter("c")->Increment(3);
  registry.gauge("g")->Set(2.5);
  registry.histogram("h", {1.0})->Observe(0.5);

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.counters.at("c"), 3);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  EXPECT_EQ(snap.histograms.at("h").count, 1);
  ASSERT_EQ(snap.histograms.at("h").bucket_counts.size(), 2u);
  EXPECT_EQ(snap.histograms.at("h").bucket_counts[0], 1);
}

TEST(MetricsTest, DiffSinceSubtractsCountersKeepsGauges) {
  obs::MetricsRegistry registry;
  registry.counter("c")->Increment(10);
  registry.gauge("g")->Set(1.0);
  registry.histogram("h", {1.0})->Observe(0.5);
  const obs::MetricsSnapshot before = registry.Snapshot();

  registry.counter("c")->Increment(5);
  registry.gauge("g")->Set(9.0);
  registry.histogram("h", {1.0})->Observe(0.25);
  registry.counter("new")->Increment(2);
  const obs::MetricsSnapshot after = registry.Snapshot();

  const obs::MetricsSnapshot diff = after.DiffSince(before);
  EXPECT_EQ(diff.counters.at("c"), 5);
  EXPECT_EQ(diff.counters.at("new"), 2);
  EXPECT_DOUBLE_EQ(diff.gauges.at("g"), 9.0);
  EXPECT_EQ(diff.histograms.at("h").count, 1);
  EXPECT_DOUBLE_EQ(diff.histograms.at("h").sum, 0.25);
}

TEST(MetricsTest, JsonAndCsvSerialization) {
  obs::MetricsRegistry registry;
  registry.counter("join.runs")->Increment();
  registry.gauge("sim")->Set(1.5);
  registry.histogram("lat", {1.0, 2.0})->Observe(1.5);
  const obs::MetricsSnapshot snap = registry.Snapshot();

  const std::string json = snap.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"join.runs\":1"), std::string::npos);

  const std::string csv = snap.ToCsv();
  EXPECT_NE(csv.find("counter,join.runs,1"), std::string::npos);
  EXPECT_NE(csv.find("gauge,sim,"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,"), std::string::npos);
}

TEST(MetricsTest, HistogramAcceptsNanAndInfObservations) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("h", {1.0, 2.0});
  h->Observe(std::numeric_limits<double>::infinity());
  h->Observe(-std::numeric_limits<double>::infinity());
  h->Observe(std::nan(""));
  h->Observe(1.5);
  EXPECT_EQ(h->count(), 4);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  int64_t bucketed = 0;
  for (const int64_t c : snap.histograms.at("h").bucket_counts) bucketed += c;
  EXPECT_EQ(bucketed, 4) << "every observation lands in some bucket";
  // The poisoned sum serializes as null, never as a bare nan/inf token.
  const std::string json = snap.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"sum\":null"), std::string::npos);
}

TEST(MetricsTest, SnapshotAndDiffUnderConcurrentUpdates) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int64_t kIncrements = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t]() {
      obs::Counter* c = registry.counter("shared");
      obs::Histogram* h = registry.histogram("lat", {1.0, 4.0});
      for (int64_t i = 0; i < kIncrements; ++i) {
        c->Increment();
        registry.counter("own." + std::to_string(t))->Increment();
        h->Observe(static_cast<double>(i % 8));
        registry.gauge("g")->Set(static_cast<double>(i));
      }
    });
  }
  // Race snapshots against the writers: totals must be internally
  // consistent (monotone counters, no torn histogram bucket vectors).
  obs::MetricsSnapshot earlier = registry.Snapshot();
  for (int i = 0; i < 50; ++i) {
    const obs::MetricsSnapshot now = registry.Snapshot();
    const obs::MetricsSnapshot diff = now.DiffSince(earlier);
    for (const auto& [name, value] : diff.counters) {
      EXPECT_GE(value, 0) << name << " went backwards";
    }
    const auto it = now.histograms.find("lat");
    if (it != now.histograms.end()) {
      EXPECT_EQ(it->second.bucket_counts.size(), 3u);
    }
    earlier = now;
  }
  for (std::thread& worker : workers) worker.join();

  const obs::MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("shared"), kThreads * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(final_snap.counters.at("own." + std::to_string(t)), kIncrements);
  }
  EXPECT_EQ(final_snap.histograms.at("lat").count, kThreads * kIncrements);
}

TEST(MetricsTest, WithoutPrefixDropsWallClockMetrics) {
  obs::MetricsRegistry registry;
  registry.counter("side1.docs_retrieved")->Increment(3);
  registry.gauge("wall.pool.queue_depth")->Set(7.0);
  registry.gauge("checkpoint.bytes_written")->Set(100.0);
  registry.histogram("wall.latency", {1.0})->Observe(0.5);

  const obs::MetricsSnapshot filtered =
      registry.Snapshot().WithoutPrefix("wall.");
  EXPECT_EQ(filtered.counters.count("side1.docs_retrieved"), 1u);
  EXPECT_EQ(filtered.gauges.count("checkpoint.bytes_written"), 1u);
  EXPECT_EQ(filtered.gauges.count("wall.pool.queue_depth"), 0u);
  EXPECT_EQ(filtered.histograms.count("wall.latency"), 0u);
}

TEST(MetricsTest, PrometheusExpositionFormat) {
  obs::MetricsRegistry registry;
  registry.counter("join.runs")->Increment(2);
  registry.gauge("join.sim_seconds")->Set(12.5);
  obs::Histogram* h = registry.histogram("lat", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(9.0);

  const std::string text = registry.Snapshot().ToPrometheus();
  // Dotted registry names map into the Prometheus charset under one prefix.
  EXPECT_NE(text.find("# TYPE iejoin_join_runs counter\niejoin_join_runs 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE iejoin_join_sim_seconds gauge\n"
                      "iejoin_join_sim_seconds 12.5\n"),
            std::string::npos)
      << text;
  // Histogram buckets are cumulative and close with +Inf == count.
  EXPECT_NE(text.find("iejoin_lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("iejoin_lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("iejoin_lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("iejoin_lat_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("iejoin_lat_count 3\n"), std::string::npos);

  std::string appended = "# preamble\n";
  registry.WriteExposition(&appended);
  EXPECT_EQ(appended, "# preamble\n" + text);
}

// --------------------------------------------------------------------------
// Tracer
// --------------------------------------------------------------------------

TEST(TracerTest, NestsByOpenSpanStack) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span root = tracer.StartSpan("root");
    {
      obs::Tracer::Span child = tracer.StartSpan("child");
      obs::Tracer::Span grandchild = tracer.StartSpan("grandchild");
    }
    obs::Tracer::Span sibling = tracer.StartSpan("sibling");
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "root");
  EXPECT_EQ(spans[0].parent_id, -1);
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent_id, spans[0].id);
  EXPECT_EQ(spans[2].name, "grandchild");
  EXPECT_EQ(spans[2].parent_id, spans[1].id);
  EXPECT_EQ(spans[3].name, "sibling");
  EXPECT_EQ(spans[3].parent_id, spans[0].id);
  for (const obs::SpanRecord& s : spans) {
    EXPECT_TRUE(s.ended);
    EXPECT_GE(s.wall_end_us, s.wall_start_us);
  }
}

TEST(TracerTest, AttributesAndExplicitEnd) {
  obs::Tracer tracer;
  obs::Tracer::Span span = tracer.StartSpan("op");
  span.AddAttribute("k", "v");
  span.AddAttribute("n", int64_t{7});
  span.AddAttribute("d", 1.5);
  span.End();
  span.End();  // idempotent
  const obs::SpanRecord& rec = tracer.spans()[0];
  ASSERT_EQ(rec.attributes.size(), 3u);
  EXPECT_EQ(rec.attributes[0].first, "k");
  EXPECT_EQ(rec.attributes[0].second, "v");
  EXPECT_EQ(rec.attributes[1].second, "7");
  EXPECT_TRUE(rec.ended);
}

TEST(TracerTest, NoopSpanWhenTracerAbsent) {
  obs::Tracer::Span span = obs::StartSpan(nullptr, "anything");
  EXPECT_FALSE(static_cast<bool>(span));
  span.AddAttribute("k", "v");  // must not crash
  span.End();
}

TEST(TracerTest, DropsSpansBeyondCap) {
  obs::Tracer tracer(/*max_spans=*/2);
  obs::Tracer::Span a = tracer.StartSpan("a");
  obs::Tracer::Span b = tracer.StartSpan("b");
  obs::Tracer::Span c = tracer.StartSpan("c");
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

TEST(TracerTest, SimTimeSourceSampledAtStartAndEnd) {
  obs::Tracer tracer;
  double sim = 10.0;
  tracer.SetSimTimeSource([&sim] { return sim; });
  obs::Tracer::Span span = tracer.StartSpan("op");
  sim = 25.0;
  span.End();
  tracer.ClearSimTimeSource();
  const obs::SpanRecord& rec = tracer.spans()[0];
  EXPECT_DOUBLE_EQ(rec.sim_start_seconds, 10.0);
  EXPECT_DOUBLE_EQ(rec.sim_end_seconds, 25.0);
}

TEST(TracerTest, ToJsonIsValidNestedTree) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span root = tracer.StartSpan("root");
    root.AddAttribute("quoted", "needs \"escaping\"");
    obs::Tracer::Span child = tracer.StartSpan("child");
  }
  const std::string json = tracer.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"span_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{\"name\":\"child\""), std::string::npos);
}

// --------------------------------------------------------------------------
// RunReport
// --------------------------------------------------------------------------

TEST(RunReportTest, ToJsonBundlesAllSections) {
  obs::MetricsRegistry registry;
  registry.counter("c")->Increment(3);
  obs::Tracer tracer;
  { obs::Tracer::Span s = tracer.StartSpan("join.run"); }

  obs::RunReport report;
  report.label = "IDJN test";
  report.metrics = registry.Snapshot();
  report.spans = tracer.spans();
  obs::TrajectorySample sample;
  sample.side1.docs_processed = 5;
  sample.good_join_tuples = 2;
  sample.seconds = 1.5;
  report.trajectory.push_back(sample);
  report.prediction.has_prediction = true;
  report.prediction.predicted_good = 10.0;
  report.prediction.observed_good = 8.0;

  const std::string json = report.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"label\":\"IDJN test\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"good_delta\":-2"), std::string::npos);
}

// --------------------------------------------------------------------------
// Guard test: telemetry must not perturb execution.
// --------------------------------------------------------------------------

class ObsExecutionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinPlanSpec ScanPlan() {
    JoinPlanSpec plan;
    plan.algorithm = JoinAlgorithmKind::kIndependent;
    plan.theta1 = plan.theta2 = 0.4;
    plan.retrieval1 = RetrievalStrategyKind::kScan;
    plan.retrieval2 = RetrievalStrategyKind::kScan;
    return plan;
  }

  static Result<JoinExecutionResult> RunScanPlan(obs::MetricsRegistry* metrics,
                                                 obs::Tracer* tracer) {
    auto executor = CreateJoinExecutor(ScanPlan(), bench().resources());
    EXPECT_TRUE(executor.ok());
    JoinExecutionOptions options;
    options.stop_rule = StopRule::kOracleQuality;
    options.requirement.min_good_tuples = 20;
    options.requirement.max_bad_tuples = 100000;
    options.metrics = metrics;
    options.tracer = tracer;
    return (*executor)->Run(options);
  }

  static Workbench* bench_;
};

Workbench* ObsExecutionTest::bench_ = nullptr;

TEST_F(ObsExecutionTest, TelemetryDoesNotPerturbExecution) {
  auto plain = RunScanPlan(nullptr, nullptr);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  auto instrumented = RunScanPlan(&registry, &tracer);
  ASSERT_TRUE(instrumented.ok()) << instrumented.status().ToString();

  EXPECT_EQ(plain->final_point.docs_processed1,
            instrumented->final_point.docs_processed1);
  EXPECT_EQ(plain->final_point.docs_processed2,
            instrumented->final_point.docs_processed2);
  EXPECT_EQ(plain->final_point.extracted1, instrumented->final_point.extracted1);
  EXPECT_EQ(plain->final_point.extracted2, instrumented->final_point.extracted2);
  EXPECT_EQ(plain->final_point.good_join_tuples,
            instrumented->final_point.good_join_tuples);
  EXPECT_EQ(plain->final_point.bad_join_tuples,
            instrumented->final_point.bad_join_tuples);
  EXPECT_DOUBLE_EQ(plain->final_point.seconds, instrumented->final_point.seconds);
  EXPECT_EQ(plain->trajectory.size(), instrumented->trajectory.size());
}

TEST_F(ObsExecutionTest, ExecutorPopulatesRegistryAndTrace) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  auto result = RunScanPlan(&registry, &tracer);
  ASSERT_TRUE(result.ok());

  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GE(snap.size(), 10u);  // the documented metric scheme is rich
  // Mirrored side counters must agree exactly with the final point.
  EXPECT_EQ(snap.counters.at("side1.docs_processed"),
            result->final_point.docs_processed1);
  EXPECT_EQ(snap.counters.at("side2.docs_processed"),
            result->final_point.docs_processed2);
  EXPECT_EQ(snap.counters.at("side1.tuples_extracted"),
            result->final_point.extracted1);
  EXPECT_EQ(snap.counters.at("join.runs"), 1);
  EXPECT_DOUBLE_EQ(snap.gauges.at("join.good_tuples"),
                   static_cast<double>(result->final_point.good_join_tuples));
  EXPECT_EQ(snap.histograms.at("join.tuples_per_document").count,
            result->final_point.docs_processed1 +
                result->final_point.docs_processed2);

  // Span tree: one join.run root with side.extract children.
  const auto& spans = tracer.spans();
  ASSERT_FALSE(spans.empty());
  const obs::SpanRecord* run = nullptr;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "join.run") run = &s;
  }
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->parent_id, -1);
  EXPECT_TRUE(run->ended);
  int64_t extract_children = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "side.extract" && s.parent_id == run->id) ++extract_children;
  }
  EXPECT_EQ(extract_children, result->final_point.docs_processed1 +
                                  result->final_point.docs_processed2);
  // The executor binds the cost-model clock: the run span's simulated end
  // time is the execution's simulated duration.
  EXPECT_DOUBLE_EQ(run->sim_end_seconds, result->final_point.seconds);

  EXPECT_TRUE(IsValidJson(tracer.ToJson()));
  EXPECT_TRUE(IsValidJson(snap.ToJson()));
}

}  // namespace
}  // namespace iejoin
