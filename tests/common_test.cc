// Unit tests for src/common: Status/Result, Rng, string utilities, logging,
// and the simulated clock.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/string_util.h"

namespace iejoin {
namespace {

// --------------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad knob");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, EveryCodeHasAUniqueName) {
  // Exhaustive over the enum: no code may fall through to the "UNKNOWN"
  // default, and no two codes may share a name.
  std::set<std::string> names;
  for (int c = 0; c < kNumStatusCodes; ++c) {
    const char* name = StatusCodeName(static_cast<StatusCode>(c));
    EXPECT_STRNE(name, "UNKNOWN") << "code " << c;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_STREQ(StatusCodeName(static_cast<StatusCode>(kNumStatusCodes)), "UNKNOWN");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  IEJOIN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

}  // namespace helpers

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  auto r = helpers::Doubled(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto r = helpers::Doubled(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    const int64_t v = rng.UniformInt(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RngBinomialTest : public ::testing::TestWithParam<std::pair<int64_t, double>> {};

TEST_P(RngBinomialTest, MatchesMeanAndVariance) {
  const auto [n, p] = GetParam();
  Rng rng(21 + static_cast<uint64_t>(n));
  const int trials = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < trials; ++i) {
    const int64_t x = rng.Binomial(n, p);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, n);
    sum += static_cast<double>(x);
    sum2 += static_cast<double>(x) * static_cast<double>(x);
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  const double expect_mean = static_cast<double>(n) * p;
  const double expect_var = expect_mean * (1.0 - p);
  EXPECT_NEAR(mean, expect_mean, std::max(0.05, 4.0 * std::sqrt(expect_var / trials)));
  EXPECT_NEAR(var, expect_var, std::max(0.1, 0.15 * expect_var));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLarge, RngBinomialTest,
                         ::testing::Values(std::make_pair<int64_t, double>(10, 0.5),
                                           std::make_pair<int64_t, double>(40, 0.1),
                                           std::make_pair<int64_t, double>(500, 0.3),
                                           std::make_pair<int64_t, double>(5000, 0.7)));

TEST(RngTest, BinomialDegenerate) {
  Rng rng(23);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(100, 0.0), 0);
  EXPECT_EQ(rng.Binomial(100, 1.0), 100);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(25);
  const int n = 100000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng fa = a.Fork(5);
  Rng fb = b.Fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.NextU64(), fb.NextU64());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(33);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(35);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const int64_t idx = rng.WeightedIndex(weights);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 3);
    ++counts[static_cast<size_t>(idx)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexAllZeroReturnsMinusOne) {
  Rng rng(37);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), -1);
}

// --------------------------------------------------------------------------
// String utilities
// --------------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  const auto parts = Split(",a,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(StringUtilTest, SplitWhitespaceEmptyInput) {
  EXPECT_TRUE(SplitWhitespace("").empty());
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, Lowercase) {
  EXPECT_EQ(Lowercase("MiXeD 123 CaSe"), "mixed 123 case");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_FALSE(StartsWith("bar", "foo"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

// --------------------------------------------------------------------------
// Logging
// --------------------------------------------------------------------------

TEST(LoggingTest, ParseLogLevelNamesAndDigits) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("fatal"), LogLevel::kFatal);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("9"), std::nullopt);
}

TEST(LoggingTest, SinkCapturesMessagesAndRestores) {
  struct Captured {
    LogLevel level;
    std::string file;
    int line;
    std::string message;
  };
  std::vector<Captured> captured;
  LogSink previous = SetLogSink(
      [&captured](LogLevel level, const char* file, int line,
                  const std::string& message) {
        captured.push_back(Captured{level, file, line, message});
      });

  const LogLevel old_threshold = GetLogThreshold();
  SetLogThreshold(LogLevel::kInfo);
  IEJOIN_LOG(Warning) << "captured " << 42;
  IEJOIN_LOG(Debug) << "below threshold";  // must not reach the sink

  SetLogThreshold(old_threshold);
  SetLogSink(std::move(previous));

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].level, LogLevel::kWarning);
  EXPECT_EQ(captured[0].message, "captured 42");
  EXPECT_NE(captured[0].file.find("common_test"), std::string::npos);
  EXPECT_GT(captured[0].line, 0);
}

TEST(LoggingTest, EnvOverrideSetsThreshold) {
  const LogLevel old_threshold = GetLogThreshold();
  ASSERT_EQ(setenv("IEJOIN_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  ApplyLogLevelFromEnv();
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);

  // Unparsable values leave the threshold untouched.
  ASSERT_EQ(setenv("IEJOIN_LOG_LEVEL", "nonsense", 1), 0);
  ApplyLogLevelFromEnv();
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);

  ASSERT_EQ(unsetenv("IEJOIN_LOG_LEVEL"), 0);
  SetLogThreshold(old_threshold);
}

// --------------------------------------------------------------------------
// SimClock
// --------------------------------------------------------------------------

TEST(SimClockTest, AccumulatesAndResets) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
  clock.Advance(1.5);
  clock.Advance(2.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 3.5);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

TEST(SimClockTest, ZeroAdvanceIsNoop) {
  SimClock clock;
  clock.Advance(0.0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

}  // namespace
}  // namespace iejoin
