// Monte-Carlo validation of the fault-adjusted model
// (src/model/fault_adjusted_model.h), mirroring model_montecarlo_test.cc's
// approach for the Section V models:
//
//  1. The per-(side, op) closed forms — drop fraction, expected failed
//     attempts, expected stall/backoff/hedge overhead — are checked against
//     a direct simulation of the retry/hedge process.
//  2. End-to-end: for each join algorithm (IDJN/OIJN/ZGJN), the
//     fault-adjusted prediction built from one clean run is compared against
//     the observed mean over >= 200 seeded fault-injected executions; the
//     predicted time must land within 15% relative error and the predicted
//     drop counts within tolerance.
//  3. Optimizer regressions: a zero-rate profile reproduces the fault-blind
//     ranking bit-identically, and ranking between plans flips once one
//     side's fault rate crosses the analytic break-even.
//
// Registered with the `montecarlo` ctest label: excluded from sanitizer CI
// jobs and run with --repeat until-pass:2 in the nightly lane.

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "model/fault_adjusted_model.h"
#include "optimizer/optimizer.h"

namespace iejoin {
namespace {

using fault::FaultOp;
using fault::FaultPlan;

// --------------------------------------------------------------------------
// 1. Closed forms vs direct simulation of the retry / hedge process.
// --------------------------------------------------------------------------

/// One attempt of the injector's dice: the timeout die rolls first. Returns
/// the stall penalty through `penalty` (0 for clean errors) and whether the
/// attempt succeeded.
bool AttemptSucceeds(const fault::OpFaultSpec& spec, Rng* rng, double* penalty) {
  *penalty = 0.0;
  if (rng->Bernoulli(spec.timeout_rate)) {
    *penalty = spec.timeout_seconds;
    return false;
  }
  return !rng->Bernoulli(spec.error_rate);
}

TEST(FaultModelClosedFormTest, SequentialRetriesMatchSimulation) {
  FaultPlan plan;
  plan.op(0, FaultOp::kExtract).error_rate = 0.2;
  plan.op(0, FaultOp::kExtract).timeout_rate = 0.1;
  plan.op(0, FaultOp::kExtract).timeout_seconds = 3.0;
  plan.retry.max_attempts = 3;
  plan.retry.initial_backoff_seconds = 0.05;
  plan.retry.backoff_multiplier = 2.0;
  plan.retry.max_backoff_seconds = 5.0;
  plan.retry.jitter_fraction = 0.0;  // jitter is mean-zero; keep it exact

  FaultModelOptions options;
  options.plan = &plan;
  const OpFaultFactors factors =
      ComputeOpFaultFactors(options, 0, FaultOp::kExtract);
  const double f = 0.1 + 0.9 * 0.2;
  EXPECT_NEAR(factors.failure_prob, f, 1e-12);

  const double op_cost = 0.8;
  Rng rng(20260807);
  const int kOps = 200000;
  double drops = 0.0, failures = 0.0, overhead = 0.0;
  for (int i = 0; i < kOps; ++i) {
    bool survived = false;
    for (int attempt = 0; attempt < plan.retry.max_attempts; ++attempt) {
      double penalty = 0.0;
      if (AttemptSucceeds(plan.op(0, FaultOp::kExtract), &rng, &penalty)) {
        survived = true;
        break;
      }
      failures += 1.0;
      overhead += op_cost + penalty;  // the failed attempt's wasted work
      if (attempt + 1 < plan.retry.max_attempts) {
        overhead += std::min(plan.retry.initial_backoff_seconds *
                                 std::pow(plan.retry.backoff_multiplier, attempt),
                             plan.retry.max_backoff_seconds);
      }
    }
    if (!survived) drops += 1.0;
  }
  EXPECT_NEAR(drops / kOps, factors.drop_fraction,
              0.05 * factors.drop_fraction);
  EXPECT_NEAR(failures / kOps, factors.expected_failures,
              0.02 * factors.expected_failures);
  const double predicted_overhead = factors.ExpectedOverheadSeconds(op_cost);
  EXPECT_NEAR(overhead / kOps, predicted_overhead, 0.02 * predicted_overhead);
}

TEST(FaultModelClosedFormTest, HedgedRacingMatchesSimulation) {
  FaultPlan plan;
  plan.op(1, FaultOp::kQuery).error_rate = 0.3;
  plan.op(1, FaultOp::kQuery).timeout_rate = 0.15;
  plan.op(1, FaultOp::kQuery).timeout_seconds = 2.0;
  plan.hedge.max_hedges = 2;
  plan.hedge.delay_seconds = 0.25;

  FaultModelOptions options;
  options.plan = &plan;
  const OpFaultFactors factors = ComputeOpFaultFactors(options, 1, FaultOp::kQuery);
  ASSERT_TRUE(factors.hedged);

  const double op_cost = 0.5;
  Rng rng(777);
  const int kOps = 200000;
  double drops = 0.0, overhead = 0.0;
  for (int i = 0; i < kOps; ++i) {
    const int racers = plan.hedge.max_hedges + 1;
    bool survived = false;
    double last_penalty = 0.0;
    for (int k = 0; k < racers; ++k) {
      double penalty = 0.0;
      if (AttemptSucceeds(plan.op(1, FaultOp::kQuery), &rng, &penalty)) {
        // Racer k completes first; only its launch stagger is extra time.
        overhead += k * plan.hedge.delay_seconds;
        survived = true;
        break;
      }
      last_penalty = penalty;
    }
    if (!survived) {
      drops += 1.0;
      overhead += op_cost + (racers - 1) * plan.hedge.delay_seconds + last_penalty;
    }
  }
  EXPECT_NEAR(drops / kOps, factors.drop_fraction, 0.05 * factors.drop_fraction);
  const double predicted_overhead = factors.ExpectedOverheadSeconds(op_cost);
  EXPECT_NEAR(overhead / kOps, predicted_overhead, 0.02 * predicted_overhead);
}

TEST(FaultModelClosedFormTest, DegradedSideFloorsExtractFailure) {
  FaultPlan plan;
  plan.op(0, FaultOp::kExtract).error_rate = 0.05;
  FaultModelOptions options;
  options.plan = &plan;
  options.side_degraded[0] = true;
  const OpFaultFactors degraded =
      ComputeOpFaultFactors(options, 0, FaultOp::kExtract);
  EXPECT_DOUBLE_EQ(degraded.failure_prob, options.degraded_extract_failure);
  // The floor applies to extract only, and only on the degraded side.
  EXPECT_DOUBLE_EQ(
      ComputeOpFaultFactors(options, 0, FaultOp::kRetrieve).failure_prob, 0.0);
  options.side_degraded[0] = false;
  EXPECT_DOUBLE_EQ(
      ComputeOpFaultFactors(options, 0, FaultOp::kExtract).failure_prob, 0.05);
}

// --------------------------------------------------------------------------
// 2. End-to-end: adjusted prediction vs observed means over seeded runs.
// --------------------------------------------------------------------------

class FaultModelMonteCarloTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  /// The moderate-rate profile the predictions are validated under. The
  /// breaker is disabled and there are no outages or deadline: those are
  /// deliberately outside the closed form (docs/ROBUSTNESS.md).
  static FaultPlan MonteCarloPlan() {
    FaultPlan plan;
    plan.set_error_rate(FaultOp::kExtract, 0.15);
    plan.set_error_rate(FaultOp::kRetrieve, 0.1);
    plan.set_error_rate(FaultOp::kQuery, 0.1);
    plan.set_timeout(FaultOp::kExtract, 0.05, 2.0);
    plan.retry.max_attempts = 3;
    plan.breaker.failure_threshold = 0;
    return plan;
  }

  /// Builds the fault-blind base estimate from an observed clean run, so the
  /// comparison isolates the adjustment layer from the Section V models.
  static QualityEstimate BaseEstimateFromCleanRun(const JoinPlanSpec& plan) {
    JoinExecutionOptions options;
    options.stop_rule = StopRule::kExhaustion;
    auto clean = bench().RunPlan(plan, options);
    EXPECT_TRUE(clean.ok()) << clean.status().ToString();
    const TrajectoryPoint& p = clean->final_point;
    QualityEstimate base;
    base.expected_good = static_cast<double>(p.good_join_tuples);
    base.expected_bad = static_cast<double>(p.bad_join_tuples);
    base.seconds = p.seconds;
    base.docs_retrieved1 = static_cast<double>(p.docs_retrieved1);
    base.docs_retrieved2 = static_cast<double>(p.docs_retrieved2);
    base.docs_processed1 = static_cast<double>(p.docs_processed1);
    base.docs_processed2 = static_cast<double>(p.docs_processed2);
    base.queries1 = static_cast<double>(p.queries1);
    base.queries2 = static_cast<double>(p.queries2);
    return base;
  }

  static void ValidatePrediction(const JoinPlanSpec& plan_spec,
                                 const char* label) {
    const QualityEstimate base = BaseEstimateFromCleanRun(plan_spec);

    FaultPlan fault_plan = MonteCarloPlan();
    FaultModelOptions model_options;
    model_options.plan = &fault_plan;
    const FaultAdjustment adjustment = ComputeFaultAdjustment(model_options);
    ASSERT_TRUE(adjustment.active);
    auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
    ASSERT_TRUE(inputs.ok());
    const FaultAdjustedEstimate predicted =
        AdjustEstimate(base, plan_spec, adjustment, inputs->costs1, inputs->costs2);

    constexpr int kRuns = 200;
    double mean_seconds = 0.0;
    double mean_docs_dropped = 0.0;
    double mean_queries_dropped = 0.0;
    for (int run = 0; run < kRuns; ++run) {
      fault_plan.seed = 50000 + static_cast<uint64_t>(run);
      JoinExecutionOptions options;
      options.stop_rule = StopRule::kExhaustion;
      options.fault_plan = &fault_plan;
      auto result = bench().RunPlan(plan_spec, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const TrajectoryPoint& p = result->final_point;
      mean_seconds += p.seconds / kRuns;
      mean_docs_dropped +=
          static_cast<double>(p.docs_dropped1 + p.docs_dropped2) / kRuns;
      mean_queries_dropped +=
          static_cast<double>(p.queries_dropped1 + p.queries_dropped2) / kRuns;
    }

    // ISSUE acceptance bar: predicted execution time within 15% relative
    // error of the observed mean, for every algorithm.
    EXPECT_NEAR(predicted.estimate.seconds, mean_seconds, 0.15 * mean_seconds)
        << label << ": predicted " << predicted.estimate.seconds
        << "s vs observed mean " << mean_seconds << "s";

    const double predicted_docs_dropped =
        predicted.expected_docs_dropped1 + predicted.expected_docs_dropped2;
    EXPECT_NEAR(predicted_docs_dropped, mean_docs_dropped,
                std::max(0.2 * mean_docs_dropped, 3.0))
        << label << ": predicted " << predicted_docs_dropped
        << " dropped docs vs observed mean " << mean_docs_dropped;
    const double predicted_queries_dropped =
        predicted.expected_queries_dropped1 + predicted.expected_queries_dropped2;
    EXPECT_NEAR(predicted_queries_dropped, mean_queries_dropped,
                std::max(0.2 * mean_queries_dropped, 3.0))
        << label << ": predicted " << predicted_queries_dropped
        << " dropped queries vs observed mean " << mean_queries_dropped;
  }

  static Workbench* bench_;
};

Workbench* FaultModelMonteCarloTest::bench_ = nullptr;

TEST_F(FaultModelMonteCarloTest, IdjnPredictionMatchesObservedMeans) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.4;
  ValidatePrediction(plan, "idjn-sc/sc");
}

TEST_F(FaultModelMonteCarloTest, OijnPredictionMatchesObservedMeans) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kOuterInner;
  plan.theta1 = plan.theta2 = 0.4;
  ValidatePrediction(plan, "oijn");
}

TEST_F(FaultModelMonteCarloTest, ZgjnPredictionMatchesObservedMeans) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kZigZag;
  plan.theta1 = plan.theta2 = 0.4;
  ValidatePrediction(plan, "zgjn");
}

TEST_F(FaultModelMonteCarloTest, HedgedIdjnPredictionMatchesObservedMeans) {
  // Hedging swaps the sequential-retry closed forms for the racing ones;
  // validate the end-to-end prediction under that regime too.
  JoinPlanSpec plan_spec;
  plan_spec.algorithm = JoinAlgorithmKind::kIndependent;
  plan_spec.theta1 = plan_spec.theta2 = 0.4;
  const QualityEstimate base = BaseEstimateFromCleanRun(plan_spec);

  FaultPlan fault_plan = MonteCarloPlan();
  fault_plan.hedge.max_hedges = 2;
  fault_plan.hedge.delay_seconds = 0.25;
  FaultModelOptions model_options;
  model_options.plan = &fault_plan;
  const FaultAdjustment adjustment = ComputeFaultAdjustment(model_options);
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(inputs.ok());
  const FaultAdjustedEstimate predicted =
      AdjustEstimate(base, plan_spec, adjustment, inputs->costs1, inputs->costs2);

  constexpr int kRuns = 200;
  double mean_seconds = 0.0;
  double mean_docs_dropped = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    fault_plan.seed = 90000 + static_cast<uint64_t>(run);
    JoinExecutionOptions options;
    options.stop_rule = StopRule::kExhaustion;
    options.fault_plan = &fault_plan;
    auto result = bench().RunPlan(plan_spec, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    mean_seconds += result->final_point.seconds / kRuns;
    mean_docs_dropped += static_cast<double>(result->final_point.docs_dropped1 +
                                             result->final_point.docs_dropped2) /
                         kRuns;
  }
  EXPECT_NEAR(predicted.estimate.seconds, mean_seconds, 0.15 * mean_seconds);
  const double predicted_drops =
      predicted.expected_docs_dropped1 + predicted.expected_docs_dropped2;
  EXPECT_NEAR(predicted_drops, mean_docs_dropped,
              std::max(0.2 * mean_docs_dropped, 3.0));
}

// --------------------------------------------------------------------------
// 3. Optimizer regressions: zero-rate identity and break-even ranking flip.
// --------------------------------------------------------------------------

class FaultAwareOptimizerTest : public FaultModelMonteCarloTest {};

TEST_F(FaultAwareOptimizerTest, ZeroRateProfileReproducesRankingBitIdentically) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  ASSERT_TRUE(inputs.ok());
  QualityRequirement req;
  req.min_good_tuples = 24;
  req.max_bad_tuples = 100000;

  const QualityAwareOptimizer blind(*inputs, PlanEnumerationOptions());
  const std::vector<PlanChoice> baseline = blind.RankPlans(req);

  const FaultPlan zero_plan;  // all rates zero
  OptimizerInputs aware_inputs = *inputs;
  aware_inputs.fault_plan = &zero_plan;
  const QualityAwareOptimizer aware(aware_inputs, PlanEnumerationOptions());
  const std::vector<PlanChoice> adjusted = aware.RankPlans(req);

  ASSERT_EQ(baseline.size(), adjusted.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].plan.Describe(), adjusted[i].plan.Describe()) << i;
    EXPECT_EQ(baseline[i].feasible, adjusted[i].feasible) << i;
    // Bit-identical, not merely close: an inactive adjustment must be the
    // identity function on every estimate.
    EXPECT_EQ(baseline[i].estimate.seconds, adjusted[i].estimate.seconds) << i;
    EXPECT_EQ(baseline[i].estimate.expected_good,
              adjusted[i].estimate.expected_good)
        << i;
    EXPECT_EQ(baseline[i].estimate.expected_bad,
              adjusted[i].estimate.expected_bad)
        << i;
    EXPECT_EQ(baseline[i].effort.side1, adjusted[i].effort.side1) << i;
    EXPECT_EQ(baseline[i].effort.side2, adjusted[i].effort.side2) << i;
    EXPECT_FALSE(adjusted[i].fault_adjusted) << i;
  }
}

TEST_F(FaultAwareOptimizerTest, RankingFlipsAtTheBreakEvenRate) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  ASSERT_TRUE(inputs.ok());
  QualityRequirement req;
  req.min_good_tuples = 24;
  req.max_bad_tuples = 100000;

  const QualityAwareOptimizer blind(*inputs, PlanEnumerationOptions());
  auto blind_choice = blind.ChoosePlan(req);
  ASSERT_TRUE(blind_choice.ok()) << blind_choice.status().ToString();
  const std::string blind_plan = blind_choice->plan.Describe();

  // Sweep side 2's retrieve-timeout rate upward; record the chosen plan per
  // rate. The chosen plan's adjusted prediction must degrade monotonically
  // in the rate, and at some rate the choice must flip away from the
  // fault-blind winner (the analytic break-even crossed): on the Small
  // scenario the fault-blind scan-based plan pays the stall for every R2
  // document it fetches, so a query-driven plan — which retrieves far fewer
  // R2 documents — overtakes it.
  std::vector<std::string> choices;
  double previous_best_seconds = 0.0;
  bool flipped = false;
  double flip_rate = -1.0;
  for (double rate = 0.0; rate <= 0.42; rate += 0.05) {
    FaultPlan fault_plan;
    fault_plan.op(1, FaultOp::kRetrieve).timeout_rate = rate;
    fault_plan.op(1, FaultOp::kRetrieve).timeout_seconds = 10.0;
    fault_plan.retry.max_attempts = 2;
    OptimizerInputs aware_inputs = *inputs;
    aware_inputs.fault_plan = &fault_plan;
    const QualityAwareOptimizer aware(aware_inputs, PlanEnumerationOptions());
    auto choice = aware.ChoosePlan(req);
    if (!choice.ok()) break;  // requirement infeasible past this rate
    choices.push_back(choice->plan.Describe());
    if (rate == 0.0) {
      EXPECT_EQ(choices.front(), blind_plan);
    }
    // The best achievable predicted time can only get worse as the profile
    // degrades (the zero-rate plan is still in the ranked space).
    EXPECT_GE(choice->estimate.seconds, previous_best_seconds - 1e-9)
        << "best predicted time improved when rate rose to " << rate;
    previous_best_seconds = choice->estimate.seconds;
    if (!flipped && choice->plan.Describe() != blind_plan) {
      flipped = true;
      flip_rate = rate;
    }
  }
  EXPECT_TRUE(flipped)
      << "optimizer never abandoned the fault-blind plan across the sweep";
  if (flipped) {
    EXPECT_GT(flip_rate, 0.0);
  }
}

}  // namespace
}  // namespace iejoin
