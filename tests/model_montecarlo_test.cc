// Monte-Carlo validation of the Section V models: simulate the document
// sampling + knob-thinned extraction processes directly (no corpora, no
// executors) and compare empirical means/distributions against the model
// formulas. These tests pin the math itself, independent of the synthetic
// text substrate.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distributions/binomial.h"
#include "model/join_models.h"
#include "model/join_quality_model.h"
#include "model/single_relation_model.h"

namespace iejoin {
namespace {

constexpr int kTrials = 4000;

/// Samples `sample` of `population` indices without replacement and returns
/// how many of the first `marked` were hit.
int64_t SampleMarked(int64_t population, int64_t sample, int64_t marked, Rng* rng) {
  // Floyd-ish: for moderate sizes a shuffle prefix is fine.
  std::vector<int32_t> idx(static_cast<size_t>(population));
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  int64_t hit = 0;
  for (int64_t i = 0; i < sample; ++i) {
    if (idx[static_cast<size_t>(i)] < marked) ++hit;
  }
  return hit;
}

TEST(MonteCarloModelTest, ScanGoodOccurrenceProbability) {
  // One good value with frequency g=6 placed in 6 distinct good documents
  // of a 400-document database; Scan retrieves 150 documents; extraction
  // keeps each seen occurrence with tp=0.7.
  RelationModelParams params;
  params.num_documents = 400;
  params.num_good_docs = 120;
  params.num_bad_docs = 100;
  params.tp = 0.7;
  params.fp = 0.3;
  params.bad_in_good_doc_fraction = 0.0;

  Rng rng(404);
  const int64_t g = 6;
  double total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    // The value's documents are 6 specific docs among 400; scanning 150
    // random docs sees Hyper(400, 150, 6) of them.
    const int64_t seen = SampleMarked(400, 150, g, &rng);
    total += static_cast<double>(rng.Binomial(seen, params.tp));
  }
  const double empirical = total / kTrials;
  const OccurrenceFactors f = ScanFactors(params, 150);
  EXPECT_NEAR(empirical, ExpectedGoodFrequency(f, static_cast<double>(g)),
              0.06 * ExpectedGoodFrequency(f, static_cast<double>(g)));
}

TEST(MonteCarloModelTest, ScanGoodDocsDistributionMatchesEmpirical) {
  RelationModelParams params;
  params.num_documents = 200;
  params.num_good_docs = 60;
  params.num_bad_docs = 50;
  params.tp = 1.0;
  params.fp = 1.0;

  Rng rng(405);
  std::vector<int64_t> samples;
  samples.reserve(kTrials);
  for (int t = 0; t < kTrials; ++t) {
    samples.push_back(SampleMarked(200, 80, 60, &rng));
  }
  const double emp_mean =
      std::accumulate(samples.begin(), samples.end(), 0.0) / kTrials;
  auto dist = ScanGoodDocsDistribution(params, 80);
  ASSERT_TRUE(dist.ok());
  EXPECT_NEAR(emp_mean, dist->Mean(), 0.03 * dist->Mean());
  // Variance too (hypergeometric, not binomial).
  double emp_var = 0.0;
  for (int64_t s : samples) {
    emp_var += (static_cast<double>(s) - emp_mean) * (static_cast<double>(s) - emp_mean);
  }
  emp_var /= kTrials;
  EXPECT_NEAR(emp_var, dist->Variance(), 0.15 * dist->Variance());
}

TEST(MonteCarloModelTest, ExtractedFrequencyDistributionMatchesEmpirical) {
  RelationModelParams params;
  params.num_documents = 300;
  params.num_good_docs = 90;
  params.num_bad_docs = 80;
  params.tp = 0.6;
  params.fp = 0.2;

  const int64_t g = 5;
  const int64_t good_processed = 40;
  Rng rng(406);
  std::vector<double> hist(static_cast<size_t>(g) + 1, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    const int64_t seen = SampleMarked(90, good_processed, g, &rng);
    const int64_t kept = rng.Binomial(seen, params.tp);
    hist[static_cast<size_t>(kept)] += 1.0 / kTrials;
  }
  auto dist = ExtractedFrequencyDistribution(params, good_processed, g);
  ASSERT_TRUE(dist.ok());
  for (int64_t l = 0; l <= g; ++l) {
    EXPECT_NEAR(hist[static_cast<size_t>(l)], dist->Pmf(l), 0.025)
        << "l=" << l;
  }
}

TEST(MonteCarloModelTest, FilteredScanOccurrenceProbability) {
  // Occurrence survives iff its document is scanned AND accepted by the
  // classifier; with per-document-independent acceptance the
  // occurrence-weighted and per-document rates coincide.
  RelationModelParams params;
  params.num_documents = 400;
  params.num_good_docs = 120;
  params.num_bad_docs = 100;
  params.tp = 0.8;
  params.fp = 0.4;
  params.classifier_tp = 0.85;
  params.classifier_fp = 0.25;
  params.classifier_empty = 0.05;
  params.classifier_good_occ = 0.85;  // == C_tp for independent acceptance
  params.classifier_bad_occ = 0.25 * 0.6 + 0.85 * 0.4;  // rho = 0.4 mix
  params.bad_in_good_doc_fraction = 0.4;

  Rng rng(407);
  const int64_t g = 5;
  double total_good = 0.0;
  double total_bad = 0.0;
  const int64_t b = 5;
  for (int t = 0; t < kTrials; ++t) {
    // Good occurrences: doc scanned (hyper over all docs), then accepted
    // w.p. C_tp, then extracted w.p. tp.
    const int64_t good_seen = SampleMarked(400, 200, g, &rng);
    const int64_t good_accepted = rng.Binomial(good_seen, params.classifier_tp);
    total_good += static_cast<double>(rng.Binomial(good_accepted, params.tp));
    // Bad occurrences: 40% live in good docs (accepted at C_tp), the rest
    // in bad docs (accepted at C_fp).
    const int64_t bad_seen = SampleMarked(400, 200, b, &rng);
    int64_t bad_accepted = 0;
    for (int64_t i = 0; i < bad_seen; ++i) {
      const bool in_good_doc = rng.Bernoulli(0.4);
      bad_accepted += rng.Bernoulli(in_good_doc ? params.classifier_tp
                                                : params.classifier_fp)
                          ? 1
                          : 0;
    }
    total_bad += static_cast<double>(rng.Binomial(bad_accepted, params.fp));
  }
  const OccurrenceFactors f = FilteredScanFactors(params, 200);
  EXPECT_NEAR(total_good / kTrials, ExpectedGoodFrequency(f, static_cast<double>(g)),
              0.07 * ExpectedGoodFrequency(f, static_cast<double>(g)));
  EXPECT_NEAR(total_bad / kTrials, ExpectedBadFrequency(f, static_cast<double>(b)),
              0.10 * ExpectedBadFrequency(f, static_cast<double>(b)));
}

TEST(MonteCarloModelTest, AqgCoverageMatchesEquation2) {
  // 3 queries, each retrieving 30 docs at precision 0.5 over |Dg| = 100
  // good docs. Simulate: each query independently retrieves 15 distinct
  // good docs (uniform subset); a good doc is covered if any query hits it.
  RelationModelParams params;
  params.num_documents = 500;
  params.num_good_docs = 100;
  params.num_bad_docs = 150;
  params.tp = 1.0;
  params.fp = 1.0;
  for (int i = 0; i < 3; ++i) params.aqg_queries.push_back(AqgQueryStat{0.5, 30.0});

  Rng rng(408);
  double covered_fraction = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<bool> covered(100, false);
    for (int q = 0; q < 3; ++q) {
      // 15 good docs per query (precision 0.5 of 30).
      std::vector<int32_t> idx(100);
      std::iota(idx.begin(), idx.end(), 0);
      rng.Shuffle(&idx);
      for (int i = 0; i < 15; ++i) covered[static_cast<size_t>(idx[i])] = true;
    }
    covered_fraction +=
        static_cast<double>(std::count(covered.begin(), covered.end(), true)) /
        100.0;
  }
  covered_fraction /= kTrials;
  const OccurrenceFactors f = AqgFactors(params, 3);
  // With tp = 1 the good-occurrence probability IS the Eq. 2 coverage.
  EXPECT_NEAR(f.good_occurrence, covered_fraction, 0.01);
}

TEST(MonteCarloModelTest, OijnInnerFrequencyDistributionMatchesEmpirical) {
  // A probed value with g = 5 documents among H = 60 query matches; the
  // top-k interface returns 20 of them; documents missed directly may be
  // reached by background coverage of 100 of 400 database documents; each
  // reached occurrence is emitted with rate 0.7.
  const int64_t g = 5, hits = 60, top_k = 20, background = 100, docs = 400;
  const double rate = 0.7;
  Rng rng(411);
  std::vector<double> hist(static_cast<size_t>(g) + 1, 0.0);
  double mean = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const int64_t direct = SampleMarked(hits, top_k, g, &rng);
    const int64_t via_background =
        rng.Binomial(g - direct, static_cast<double>(background) / docs);
    const int64_t emitted = rng.Binomial(direct + via_background, rate);
    hist[static_cast<size_t>(emitted)] += 1.0 / kTrials;
    mean += static_cast<double>(emitted) / kTrials;
  }
  auto dist =
      OijnInnerFrequencyDistribution(docs, g, hits, top_k, background, rate);
  ASSERT_TRUE(dist.ok()) << dist.status().ToString();
  EXPECT_NEAR(dist->Mean(), mean, 0.05 * mean);
  for (int64_t l = 0; l <= g; ++l) {
    EXPECT_NEAR(hist[static_cast<size_t>(l)], dist->Pmf(l), 0.025) << "l=" << l;
  }
  // The mean matches the collapsed form used by EstimateOijn:
  // rate * g * (k/H + (1 - k/H) * background/docs).
  const double direct_frac = static_cast<double>(top_k) / hits;
  const double closed =
      rate * g * (direct_frac + (1.0 - direct_frac) * background / static_cast<double>(docs));
  EXPECT_NEAR(dist->Mean(), closed, 1e-9);
}

TEST(MonteCarloModelTest, OijnInnerDistributionValidatesArguments) {
  EXPECT_FALSE(OijnInnerFrequencyDistribution(100, 5, 3, 10, 10, 0.5).ok());
  EXPECT_FALSE(OijnInnerFrequencyDistribution(100, 5, 10, 10, 200, 0.5).ok());
  EXPECT_FALSE(OijnInnerFrequencyDistribution(100, 5, 10, 10, 10, 1.5).ok());
  // Top-k covering every match degenerates to pure binomial thinning.
  auto dist = OijnInnerFrequencyDistribution(100, 4, 4, 10, 0, 0.5);
  ASSERT_TRUE(dist.ok());
  for (int64_t l = 0; l <= 4; ++l) {
    EXPECT_NEAR(dist->Pmf(l), binomial::Pmf(4, l, 0.5), 1e-12);
  }
}

TEST(MonteCarloModelTest, JoinCompositionMatchesBruteForce) {
  // A full mini-universe: 30 shared good values (freqs iid uniform {1..4}
  // per side), 20 values good in R1 / bad in R2, 40 bad in both. Extraction
  // keeps good occurrences w.p. p1g/p2g and bad w.p. p1b/p2b. Compare the
  // empirical mean join composition with ComposeJoin.
  const double p1g = 0.6, p1b = 0.3, p2g = 0.5, p2b = 0.25;
  Rng rng(409);

  double good_sum = 0.0;
  double bad_sum = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    int64_t good = 0;
    int64_t bad = 0;
    auto pair_count = [&rng](double pa, double pb) {
      const int64_t fa = rng.UniformInt(1, 4);
      const int64_t fb = rng.UniformInt(1, 4);
      return rng.Binomial(fa, pa) * rng.Binomial(fb, pb);
    };
    for (int v = 0; v < 30; ++v) good += pair_count(p1g, p2g);
    for (int v = 0; v < 20; ++v) bad += pair_count(p1g, p2b);
    for (int v = 0; v < 40; ++v) bad += pair_count(p1b, p2b);
    good_sum += static_cast<double>(good);
    bad_sum += static_cast<double>(bad);
  }

  JoinModelParams params;
  params.num_agg = 30;
  params.num_agb = 20;
  params.num_abg = 0;
  params.num_abb = 40;
  params.relation1.good_freq = FrequencyMoments{2.5, 7.5};
  params.relation1.bad_freq = FrequencyMoments{2.5, 7.5};
  params.relation2.good_freq = FrequencyMoments{2.5, 7.5};
  params.relation2.bad_freq = FrequencyMoments{2.5, 7.5};
  OccurrenceFactors f1;
  f1.good_occurrence = p1g;
  f1.bad_occurrence = p1b;
  OccurrenceFactors f2;
  f2.good_occurrence = p2g;
  f2.bad_occurrence = p2b;
  const QualityEstimate est = ComposeJoin(params, f1, f2, CostModel(), CostModel());
  EXPECT_NEAR(good_sum / trials, est.expected_good, 0.03 * est.expected_good);
  EXPECT_NEAR(bad_sum / trials, est.expected_bad, 0.03 * est.expected_bad);
}

TEST(MonteCarloModelTest, IdenticalCouplingMatchesSharedFrequencies) {
  // When both sides share the same per-value frequency (g1 = g2 = g), the
  // identical-coupling composition E[g^2] is the right answer.
  const double p = 0.7;
  Rng rng(410);
  double good_sum = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    int64_t good = 0;
    for (int v = 0; v < 25; ++v) {
      const int64_t f = rng.UniformInt(1, 5);
      good += rng.Binomial(f, p) * rng.Binomial(f, p);
    }
    good_sum += static_cast<double>(good);
  }
  JoinModelParams params;
  params.num_agg = 25;
  params.coupling = FrequencyCoupling::kIdentical;
  // freqs uniform {1..5}: E[f] = 3, E[f^2] = 11.
  params.relation1.good_freq = FrequencyMoments{3.0, 11.0};
  params.relation2.good_freq = FrequencyMoments{3.0, 11.0};
  OccurrenceFactors f;
  f.good_occurrence = p;
  const QualityEstimate est = ComposeJoin(params, f, f, CostModel(), CostModel());
  EXPECT_NEAR(good_sum / trials, est.expected_good, 0.03 * est.expected_good);
  // The independent coupling would be wrong here (E[f]^2 = 9 < 11).
  JoinModelParams wrong = params;
  wrong.coupling = FrequencyCoupling::kIndependent;
  const QualityEstimate bad_est = ComposeJoin(wrong, f, f, CostModel(), CostModel());
  EXPECT_LT(bad_est.expected_good, 0.9 * est.expected_good);
}

}  // namespace
}  // namespace iejoin
