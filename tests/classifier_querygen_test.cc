// Tests for the naive-Bayes document classifier (Filtered Scan's filter)
// and the QXtract-style query learner (AQG's queries).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "classifier/naive_bayes.h"
#include "querygen/query_learner.h"
#include "textdb/corpus_generator.h"

namespace iejoin {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusGenerator generator(ScenarioSpec::Small());
    auto result = generator.Generate();
    ASSERT_TRUE(result.ok());
    scenario_ = new JoinScenario(std::move(result.value()));
    auto classifier = NaiveBayesClassifier::Train(*scenario_->corpus1);
    ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();
    classifier_ = classifier.value().release();
  }
  static void TearDownTestSuite() {
    delete classifier_;
    delete scenario_;
    classifier_ = nullptr;
    scenario_ = nullptr;
  }

  static const JoinScenario& scenario() { return *scenario_; }
  static const NaiveBayesClassifier& classifier() { return *classifier_; }

  static JoinScenario* scenario_;
  static NaiveBayesClassifier* classifier_;
};

JoinScenario* ClassifierTest::scenario_ = nullptr;
NaiveBayesClassifier* ClassifierTest::classifier_ = nullptr;

TEST_F(ClassifierTest, GoodDocsScoreHigherOnAverage) {
  double good_sum = 0.0;
  int64_t good_n = 0;
  double other_sum = 0.0;
  int64_t other_n = 0;
  for (const Document& doc : scenario().corpus1->documents()) {
    const double s = classifier().Score(doc);
    if (ClassifyByGroundTruth(doc) == DocumentClass::kGood) {
      good_sum += s;
      ++good_n;
    } else {
      other_sum += s;
      ++other_n;
    }
  }
  ASSERT_GT(good_n, 0);
  ASSERT_GT(other_n, 0);
  EXPECT_GT(good_sum / static_cast<double>(good_n),
            other_sum / static_cast<double>(other_n));
}

TEST_F(ClassifierTest, CharacterizationSeparatesClasses) {
  const ClassifierCharacterization c =
      CharacterizeClassifier(classifier(), *scenario().corpus1);
  EXPECT_GT(c.true_positive_rate, 0.5);
  EXPECT_LT(c.false_positive_rate, c.true_positive_rate);
  EXPECT_LE(c.empty_acceptance_rate, c.false_positive_rate + 0.05);
  EXPECT_GE(c.true_positive_rate, 0.0);
  EXPECT_LE(c.true_positive_rate, 1.0);
}

TEST_F(ClassifierTest, OccurrenceWeightedRatesAtLeastDocRates) {
  // Acceptance correlates with mention count, so occurrence-weighted
  // acceptance dominates the per-document rate for good documents.
  const ClassifierCharacterization c =
      CharacterizeClassifier(classifier(), *scenario().corpus1);
  EXPECT_GE(c.good_occurrence_acceptance, c.true_positive_rate - 0.02);
  EXPECT_GT(c.bad_occurrence_acceptance, 0.0);
  EXPECT_LE(c.good_occurrence_acceptance, 1.0);
  EXPECT_LE(c.bad_occurrence_acceptance, 1.0);
}

TEST_F(ClassifierTest, BiasShiftsAcceptanceMonotonically) {
  auto loose = NaiveBayesClassifier::Train(*scenario().corpus1, -5.0);
  auto strict = NaiveBayesClassifier::Train(*scenario().corpus1, 5.0);
  ASSERT_TRUE(loose.ok() && strict.ok());
  int64_t loose_accepted = 0;
  int64_t strict_accepted = 0;
  for (const Document& doc : scenario().corpus1->documents()) {
    loose_accepted += (*loose)->IsLikelyGood(doc) ? 1 : 0;
    strict_accepted += (*strict)->IsLikelyGood(doc) ? 1 : 0;
  }
  EXPECT_GT(loose_accepted, strict_accepted);
}

TEST_F(ClassifierTest, TrainingRequiresBothClasses) {
  // A corpus with no planted mentions has only empty documents.
  ScenarioSpec spec = ScenarioSpec::Small();
  spec.num_shared_gg = spec.num_shared_gb = spec.num_shared_bg = spec.num_shared_bb =
      0;
  spec.num_exclusive_good1 = spec.num_exclusive_bad1 = 0;
  spec.num_exclusive_good2 = spec.num_exclusive_bad2 = 0;
  spec.num_outlier_values = 1;  // keep the value universe non-empty
  CorpusGenerator generator(spec);
  auto empty = generator.Generate();
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_FALSE(NaiveBayesClassifier::Train(*empty->corpus1).ok());
}

// --------------------------------------------------------------------------
// Query learner
// --------------------------------------------------------------------------

class QueryLearnerTest : public ClassifierTest {};

TEST_F(QueryLearnerTest, LearnsRequestedNumberOfQueries) {
  auto queries = QueryLearner::Learn(*scenario().corpus1, 20);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  EXPECT_LE(queries->size(), 20u);
  EXPECT_GT(queries->size(), 0u);
}

TEST_F(QueryLearnerTest, QueriesAreSingleWordTerms) {
  auto queries = QueryLearner::Learn(*scenario().corpus1, 20);
  ASSERT_TRUE(queries.ok());
  for (const LearnedQuery& q : *queries) {
    ASSERT_EQ(q.terms.size(), 1u);
    EXPECT_EQ(scenario().corpus1->vocabulary().Type(q.terms[0]), TokenType::kWord);
  }
}

TEST_F(QueryLearnerTest, QueriesAreDistinct) {
  auto queries = QueryLearner::Learn(*scenario().corpus1, 30);
  ASSERT_TRUE(queries.ok());
  std::set<TokenId> terms;
  for (const LearnedQuery& q : *queries) terms.insert(q.terms[0]);
  EXPECT_EQ(terms.size(), queries->size());
}

TEST_F(QueryLearnerTest, ReportedStatsMatchCorpus) {
  auto queries = QueryLearner::Learn(*scenario().corpus1, 10);
  ASSERT_TRUE(queries.ok());
  for (const LearnedQuery& q : *queries) {
    int64_t hits = 0;
    int64_t good_hits = 0;
    for (const Document& doc : scenario().corpus1->documents()) {
      if (std::find(doc.tokens.begin(), doc.tokens.end(), q.terms[0]) !=
          doc.tokens.end()) {
        ++hits;
        good_hits += ClassifyByGroundTruth(doc) == DocumentClass::kGood ? 1 : 0;
      }
    }
    EXPECT_EQ(q.hits, hits);
    EXPECT_NEAR(q.precision, static_cast<double>(good_hits) / hits, 1e-9);
  }
}

TEST_F(QueryLearnerTest, QueriesTargetGoodDocuments) {
  auto queries = QueryLearner::Learn(*scenario().corpus1, 20);
  ASSERT_TRUE(queries.ok());
  const auto& truth = scenario().corpus1->ground_truth();
  const double base_rate =
      static_cast<double>(truth.good_docs.size()) /
      static_cast<double>(scenario().corpus1->size());
  double avg_precision = 0.0;
  for (const LearnedQuery& q : *queries) avg_precision += q.precision;
  avg_precision /= static_cast<double>(queries->size());
  // Learned queries beat the base rate decisively.
  EXPECT_GT(avg_precision, 2.0 * base_rate);
}

TEST_F(QueryLearnerTest, MinHitsRespected) {
  auto queries = QueryLearner::Learn(*scenario().corpus1, 50, /*min_hits=*/10);
  ASSERT_TRUE(queries.ok());
  for (const LearnedQuery& q : *queries) EXPECT_GE(q.hits, 10);
}

TEST_F(QueryLearnerTest, RejectsNonPositiveBudget) {
  EXPECT_FALSE(QueryLearner::Learn(*scenario().corpus1, 0).ok());
}

}  // namespace
}  // namespace iejoin
