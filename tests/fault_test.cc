// Tests for the fault subsystem (src/fault) and its threading through the
// join executors: retry/backoff policy, circuit breaker state machine,
// fault-plan parsing, injector determinism — and the guard tests proving
// that (a) a zero-rate fault plan is bit-identical to no plan at all and
// (b) the same seed + plan reproduces a faulty execution exactly.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/retry_policy.h"
#include "harness/workbench.h"
#include "optimizer/adaptive_executor.h"

namespace iejoin {
namespace {

using fault::CircuitBreaker;
using fault::FaultInjector;
using fault::FaultOp;
using fault::FaultPlan;
using fault::OutageWindow;
using fault::ParseFaultPlan;
using fault::RetryPolicy;

// --------------------------------------------------------------------------
// RetryPolicy
// --------------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 100.0;
  policy.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(0, &rng), 0.1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, &rng), 0.2);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, &rng), 0.4);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, &rng), 0.8);
}

TEST(RetryPolicyTest, BackoffIsCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_seconds = 5.0;
  policy.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(5, &rng), 5.0);
}

TEST(RetryPolicyTest, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.25;
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const double backoff = policy.BackoffSeconds(0, &rng);
    EXPECT_GE(backoff, 0.75);
    EXPECT_LE(backoff, 1.25);
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicInSeed) {
  RetryPolicy policy;
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(policy.BackoffSeconds(i % 4, &a),
                     policy.BackoffSeconds(i % 4, &b));
  }
}

TEST(RetryPolicyTest, ValidateRejectsBadConfigs) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.initial_backoff_seconds = -1.0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy();
  policy.jitter_fraction = 1.5;
  EXPECT_FALSE(policy.Validate().ok());
}

// --------------------------------------------------------------------------
// CircuitBreaker
// --------------------------------------------------------------------------

CircuitBreaker::Config BreakerConfig(int32_t threshold, double cooldown) {
  CircuitBreaker::Config config;
  config.failure_threshold = threshold;
  config.cooldown_seconds = cooldown;
  return config;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreaker breaker(BreakerConfig(3, 10.0));
  EXPECT_TRUE(breaker.AllowRequest(0.0));
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(1.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.RecordFailure(2.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.AllowRequest(2.0));
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  CircuitBreaker breaker(BreakerConfig(3, 10.0));
  breaker.RecordFailure(0.0);
  breaker.RecordFailure(1.0);
  breaker.RecordSuccess();
  breaker.RecordFailure(2.0);
  breaker.RecordFailure(3.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenTrialAfterCooldown) {
  CircuitBreaker breaker(BreakerConfig(1, 10.0));
  breaker.RecordFailure(0.0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest(5.0));
  // Cooldown elapsed: one trial goes through.
  EXPECT_TRUE(breaker.AllowRequest(10.5));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(10.6));
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  CircuitBreaker breaker(BreakerConfig(1, 10.0));
  breaker.RecordFailure(0.0);
  EXPECT_TRUE(breaker.AllowRequest(10.5));
  breaker.RecordFailure(10.5);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.AllowRequest(15.0));
  EXPECT_TRUE(breaker.AllowRequest(20.6));
}

TEST(CircuitBreakerTest, DisabledBreakerNeverBlocks) {
  CircuitBreaker breaker(BreakerConfig(0, 10.0));
  for (int i = 0; i < 100; ++i) {
    breaker.RecordFailure(static_cast<double>(i));
    EXPECT_TRUE(breaker.AllowRequest(static_cast<double>(i)));
  }
  EXPECT_EQ(breaker.trips(), 0);
}

// --------------------------------------------------------------------------
// FaultPlan parsing and validation
// --------------------------------------------------------------------------

TEST(FaultPlanTest, DefaultPlanHasNoFaults) {
  FaultPlan plan;
  EXPECT_FALSE(plan.HasAnyFaults());
  EXPECT_TRUE(plan.Validate().ok());
}

TEST(FaultPlanTest, ParsesFullSpec) {
  auto plan = ParseFaultPlan(
      "seed=7,extract.error=0.1,retrieve.timeout=0.05,retrieve.timeout-cost=3,"
      "retry.attempts=5,retry.backoff=0.2,retry.multiplier=3,retry.jitter=0.2,"
      "breaker.threshold=4,breaker.cooldown=60,deadline=1000,"
      "outage=100:50:1,outage=200:25:both:query");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  // Unqualified keys assign both sides.
  for (int side = 0; side < fault::kNumFaultSides; ++side) {
    EXPECT_DOUBLE_EQ(plan->op(side, FaultOp::kExtract).error_rate, 0.1);
    EXPECT_DOUBLE_EQ(plan->op(side, FaultOp::kRetrieve).timeout_rate, 0.05);
    EXPECT_DOUBLE_EQ(plan->op(side, FaultOp::kRetrieve).timeout_seconds, 3.0);
  }
  EXPECT_EQ(plan->retry.max_attempts, 5);
  EXPECT_DOUBLE_EQ(plan->retry.initial_backoff_seconds, 0.2);
  EXPECT_DOUBLE_EQ(plan->retry.backoff_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(plan->retry.jitter_fraction, 0.2);
  EXPECT_EQ(plan->breaker.failure_threshold, 4);
  EXPECT_DOUBLE_EQ(plan->breaker.cooldown_seconds, 60.0);
  EXPECT_DOUBLE_EQ(plan->deadline_seconds, 1000.0);
  ASSERT_EQ(plan->outages.size(), 2u);
  EXPECT_DOUBLE_EQ(plan->outages[0].start_seconds, 100.0);
  EXPECT_DOUBLE_EQ(plan->outages[0].duration_seconds, 50.0);
  EXPECT_EQ(plan->outages[0].side, 0);  // "1" is side index 0
  EXPECT_EQ(plan->outages[0].op, -1);
  EXPECT_EQ(plan->outages[1].side, -1);
  EXPECT_EQ(plan->outages[1].op, static_cast<int32_t>(FaultOp::kQuery));
  EXPECT_TRUE(plan->HasAnyFaults());
  EXPECT_TRUE(plan->Validate().ok());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultPlan("bogus.key=1").ok());
  EXPECT_FALSE(ParseFaultPlan("extract.error=notanumber").ok());
  EXPECT_FALSE(ParseFaultPlan("extract.error").ok());
  EXPECT_FALSE(ParseFaultPlan("outage=abc").ok());
  EXPECT_FALSE(ParseFaultPlan("outage=1:2:3:4:5").ok());
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeRates) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 1.5);
  EXPECT_FALSE(plan.Validate().ok());
  plan = FaultPlan();
  plan.op(1, FaultOp::kQuery).timeout_rate = -0.1;  // one bad side suffices
  EXPECT_FALSE(plan.Validate().ok());
  plan = FaultPlan();
  plan.deadline_seconds = -1.0;
  EXPECT_FALSE(plan.Validate().ok());
  plan = FaultPlan();
  plan.hedge.max_hedges = -1;
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(FaultPlanTest, DescribeRoundTripsThroughParse) {
  auto plan = ParseFaultPlan("extract.error=0.25,deadline=500,retry.attempts=2");
  ASSERT_TRUE(plan.ok());
  const std::string description = DescribeFaultPlan(*plan);
  EXPECT_NE(description.find("extract"), std::string::npos);
  EXPECT_NE(description.find("deadline"), std::string::npos);
}

TEST(FaultPlanTest, ParsesPerSideAndHedgeKeys) {
  auto plan = ParseFaultPlan(
      "r1.extract.error=0.3,r2.extract.error=0.1,retrieve.timeout=0.2,"
      "r2.retrieve.timeout=0.4,hedge.max=2,hedge.delay=0.5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_DOUBLE_EQ(plan->op(0, FaultOp::kExtract).error_rate, 0.3);
  EXPECT_DOUBLE_EQ(plan->op(1, FaultOp::kExtract).error_rate, 0.1);
  // Last write wins per side: the unqualified retrieve.timeout assigned both
  // sides, then r2.retrieve.timeout overrode side 2 only.
  EXPECT_DOUBLE_EQ(plan->op(0, FaultOp::kRetrieve).timeout_rate, 0.2);
  EXPECT_DOUBLE_EQ(plan->op(1, FaultOp::kRetrieve).timeout_rate, 0.4);
  EXPECT_EQ(plan->hedge.max_hedges, 2);
  EXPECT_DOUBLE_EQ(plan->hedge.delay_seconds, 0.5);
  EXPECT_TRUE(plan->hedge.enabled());
}

TEST(FaultPlanTest, UnqualifiedKeyOverwritesBothSides) {
  auto plan = ParseFaultPlan("r1.extract.error=0.3,extract.error=0.05");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->op(0, FaultOp::kExtract).error_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->op(1, FaultOp::kExtract).error_rate, 0.05);
}

TEST(FaultPlanTest, RejectsMalformedSideQualifiersWithExactMessages) {
  auto r3 = ParseFaultPlan("r3.extract.error=0.1");
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().message(),
            "fault plan: side qualifier must be r1 or r2: r3");

  auto no_field = ParseFaultPlan("r1.extract=0.1");
  ASSERT_FALSE(no_field.ok());
  EXPECT_EQ(no_field.status().message(),
            "fault plan: side-qualified key needs <op>.<field>: r1.extract");

  auto bad_op = ParseFaultPlan("r1.bogus.error=0.1");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_EQ(bad_op.status().message(), "fault plan: unknown operation: bogus");

  auto bad_field = ParseFaultPlan("r1.extract.wibble=0.1");
  ASSERT_FALSE(bad_field.ok());
  EXPECT_EQ(bad_field.status().message(),
            "fault plan: unknown key: r1.extract.wibble");

  auto all_op = ParseFaultPlan("r1.all.error=0.5");
  ASSERT_FALSE(all_op.ok());
  EXPECT_EQ(all_op.status().message(),
            "fault plan: rates need a concrete op: r1.all.error");

  auto bad_hedge = ParseFaultPlan("hedge.max=-1");
  ASSERT_FALSE(bad_hedge.ok());
  EXPECT_EQ(bad_hedge.status().message(), "hedge.max must be >= 0");
}

// --------------------------------------------------------------------------
// FormatFaultPlan: canonical round-trip.
// --------------------------------------------------------------------------

void ExpectPlansEqual(const FaultPlan& a, const FaultPlan& b) {
  EXPECT_EQ(a.seed, b.seed);
  for (int side = 0; side < fault::kNumFaultSides; ++side) {
    for (int i = 0; i < fault::kNumFaultOps; ++i) {
      EXPECT_TRUE(a.ops[side][i] == b.ops[side][i])
          << "side " << side << " op " << i;
    }
  }
  EXPECT_EQ(a.retry.max_attempts, b.retry.max_attempts);
  EXPECT_DOUBLE_EQ(a.retry.initial_backoff_seconds, b.retry.initial_backoff_seconds);
  EXPECT_DOUBLE_EQ(a.retry.backoff_multiplier, b.retry.backoff_multiplier);
  EXPECT_DOUBLE_EQ(a.retry.max_backoff_seconds, b.retry.max_backoff_seconds);
  EXPECT_DOUBLE_EQ(a.retry.jitter_fraction, b.retry.jitter_fraction);
  EXPECT_EQ(a.hedge.max_hedges, b.hedge.max_hedges);
  EXPECT_DOUBLE_EQ(a.hedge.delay_seconds, b.hedge.delay_seconds);
  EXPECT_EQ(a.breaker.failure_threshold, b.breaker.failure_threshold);
  EXPECT_DOUBLE_EQ(a.breaker.cooldown_seconds, b.breaker.cooldown_seconds);
  EXPECT_DOUBLE_EQ(a.deadline_seconds, b.deadline_seconds);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outages[i].start_seconds, b.outages[i].start_seconds);
    EXPECT_DOUBLE_EQ(a.outages[i].duration_seconds, b.outages[i].duration_seconds);
    EXPECT_EQ(a.outages[i].side, b.outages[i].side);
    EXPECT_EQ(a.outages[i].op, b.outages[i].op);
  }
}

void ExpectFormatRoundTrips(const FaultPlan& plan) {
  const std::string formatted = fault::FormatFaultPlan(plan);
  auto reparsed = ParseFaultPlan(formatted);
  ASSERT_TRUE(reparsed.ok()) << formatted << " -> "
                             << reparsed.status().ToString();
  ExpectPlansEqual(plan, *reparsed);
  // Formatting is a fixed point.
  EXPECT_EQ(fault::FormatFaultPlan(*reparsed), formatted);
}

TEST(FaultPlanFormatTest, HandWrittenPlansRoundTrip) {
  ExpectFormatRoundTrips(FaultPlan());

  FaultPlan asymmetric;
  asymmetric.op(0, FaultOp::kExtract).error_rate = 0.3;
  asymmetric.op(1, FaultOp::kExtract).error_rate = 0.1;
  asymmetric.op(0, FaultOp::kRetrieve).timeout_rate = 1.0 / 3.0;
  asymmetric.op(0, FaultOp::kRetrieve).timeout_seconds = 7.25;
  ExpectFormatRoundTrips(asymmetric);

  FaultPlan kitchen_sink;
  kitchen_sink.seed = 9;
  kitchen_sink.set_error_rate(FaultOp::kQuery, 0.05);
  kitchen_sink.retry.max_attempts = 7;
  kitchen_sink.retry.jitter_fraction = 0.0;
  kitchen_sink.hedge.max_hedges = 3;
  kitchen_sink.hedge.delay_seconds = 0.125;
  kitchen_sink.breaker.failure_threshold = 4;
  kitchen_sink.breaker.cooldown_seconds = 33.5;
  kitchen_sink.deadline_seconds = 1234.5;
  OutageWindow outage;
  outage.start_seconds = 10.5;
  outage.duration_seconds = 2.25;
  outage.side = 1;
  outage.op = static_cast<int32_t>(FaultOp::kQuery);
  kitchen_sink.outages.push_back(outage);
  OutageWindow broad;
  broad.start_seconds = 100.0;
  broad.duration_seconds = 50.0;
  kitchen_sink.outages.push_back(broad);
  ExpectFormatRoundTrips(kitchen_sink);
}

TEST(FaultPlanFormatTest, SymmetricSpecsCollapseToUnqualifiedKeys) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 0.2);
  const std::string formatted = fault::FormatFaultPlan(plan);
  EXPECT_NE(formatted.find("extract.error=0.2"), std::string::npos) << formatted;
  EXPECT_EQ(formatted.find("r1."), std::string::npos) << formatted;

  plan.op(1, FaultOp::kExtract).error_rate = 0.4;
  const std::string split = fault::FormatFaultPlan(plan);
  EXPECT_NE(split.find("r1.extract.error=0.2"), std::string::npos) << split;
  EXPECT_NE(split.find("r2.extract.error=0.4"), std::string::npos) << split;
}

TEST(FaultPlanFormatTest, RandomPlansRoundTrip) {
  // Property test: random valid plans survive parse(format(plan)) exactly,
  // including awkward doubles that need full precision to round-trip.
  Rng rng(20260807);
  for (int trial = 0; trial < 100; ++trial) {
    FaultPlan plan;
    plan.seed = rng.NextU64() % 1000000;
    for (int side = 0; side < fault::kNumFaultSides; ++side) {
      for (int i = 0; i < fault::kNumFaultOps; ++i) {
        if (rng.NextDouble() < 0.5) {
          plan.ops[side][i].error_rate = rng.NextDouble();
        }
        if (rng.NextDouble() < 0.3) {
          plan.ops[side][i].timeout_rate = rng.NextDouble();
          plan.ops[side][i].timeout_seconds = rng.NextDouble() * 10.0;
        }
      }
    }
    if (rng.NextDouble() < 0.5) {
      plan.retry.max_attempts = 1 + static_cast<int32_t>(rng.NextU64() % 6);
      plan.retry.initial_backoff_seconds = rng.NextDouble();
      plan.retry.jitter_fraction = rng.NextDouble() * 0.5;
    }
    if (rng.NextDouble() < 0.5) {
      plan.hedge.max_hedges = static_cast<int32_t>(rng.NextU64() % 4);
      plan.hedge.delay_seconds = rng.NextDouble();
    }
    if (rng.NextDouble() < 0.3) {
      OutageWindow outage;
      outage.start_seconds = rng.NextDouble() * 100.0;
      outage.duration_seconds = rng.NextDouble() * 50.0;
      outage.side = static_cast<int32_t>(rng.NextU64() % 3) - 1;
      outage.op = static_cast<int32_t>(rng.NextU64() % 5) - 1;
      plan.outages.push_back(outage);
    }
    ASSERT_TRUE(plan.Validate().ok());
    ExpectFormatRoundTrips(plan);
  }
}

TEST(OutageWindowTest, CoversMatchingSideOpAndTime) {
  OutageWindow outage;
  outage.start_seconds = 100.0;
  outage.duration_seconds = 50.0;
  outage.side = 1;
  outage.op = static_cast<int32_t>(FaultOp::kExtract);
  EXPECT_TRUE(outage.Covers(1, FaultOp::kExtract, 120.0));
  EXPECT_FALSE(outage.Covers(0, FaultOp::kExtract, 120.0));   // wrong side
  EXPECT_FALSE(outage.Covers(1, FaultOp::kRetrieve, 120.0));  // wrong op
  EXPECT_FALSE(outage.Covers(1, FaultOp::kExtract, 99.0));    // before
  EXPECT_FALSE(outage.Covers(1, FaultOp::kExtract, 150.0));   // after (exclusive)
}

// --------------------------------------------------------------------------
// FaultInjector
// --------------------------------------------------------------------------

TEST(FaultInjectorTest, ZeroRatePlanAlwaysSucceeds) {
  FaultInjector injector{FaultPlan()};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(injector.Decide(i % 2, FaultOp::kExtract, 0.0).ok());
  }
}

TEST(FaultInjectorTest, CertainErrorAlwaysFails) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 1.0);
  FaultInjector injector(plan);
  for (int i = 0; i < 100; ++i) {
    const FaultInjector::Attempt attempt = injector.Decide(0, FaultOp::kExtract, 0.0);
    EXPECT_FALSE(attempt.ok());
    EXPECT_EQ(attempt.status.code(), StatusCode::kUnavailable);
    EXPECT_DOUBLE_EQ(attempt.penalty_seconds, 0.0);
  }
  // Other operations stay healthy.
  EXPECT_TRUE(injector.Decide(0, FaultOp::kRetrieve, 0.0).ok());
}

TEST(FaultInjectorTest, TimeoutCarriesPenalty) {
  FaultPlan plan;
  plan.set_timeout(FaultOp::kQuery, 1.0, 7.5);
  FaultInjector injector(plan);
  const FaultInjector::Attempt attempt = injector.Decide(1, FaultOp::kQuery, 0.0);
  EXPECT_FALSE(attempt.ok());
  EXPECT_EQ(attempt.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(attempt.penalty_seconds, 7.5);
}

TEST(FaultInjectorTest, OutageDominatesInsideWindow) {
  FaultPlan plan;
  OutageWindow outage;
  outage.start_seconds = 10.0;
  outage.duration_seconds = 5.0;
  plan.outages.push_back(outage);
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.Decide(0, FaultOp::kExtract, 9.9).ok());
  EXPECT_FALSE(injector.Decide(0, FaultOp::kExtract, 10.0).ok());
  EXPECT_FALSE(injector.Decide(1, FaultOp::kQuery, 14.9).ok());
  EXPECT_TRUE(injector.Decide(0, FaultOp::kExtract, 15.0).ok());
}

TEST(FaultInjectorTest, SameSeedProducesIdenticalSequences) {
  FaultPlan plan;
  plan.seed = 99;
  plan.set_error_rate(FaultOp::kExtract, 0.3);
  plan.set_timeout(FaultOp::kRetrieve, 0.2, 2.0);
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 500; ++i) {
    const FaultOp op = i % 2 == 0 ? FaultOp::kExtract : FaultOp::kRetrieve;
    const FaultInjector::Attempt x = a.Decide(i % 2, op, 0.0);
    const FaultInjector::Attempt y = b.Decide(i % 2, op, 0.0);
    EXPECT_EQ(x.ok(), y.ok()) << "diverged at step " << i;
    EXPECT_DOUBLE_EQ(x.penalty_seconds, y.penalty_seconds);
  }
}

TEST(FaultInjectorTest, DifferentSeedsProduceDifferentSequences) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 0.5);
  plan.seed = 1;
  FaultInjector a(plan);
  plan.seed = 2;
  FaultInjector b(plan);
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.Decide(0, FaultOp::kExtract, 0.0).ok() !=
        b.Decide(0, FaultOp::kExtract, 0.0).ok()) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjectorTest, PerOpStreamsAreIndependent) {
  // Drawing from one operation's stream must not perturb another's: the
  // extract sequence with interleaved retrieve draws equals the extract
  // sequence without them.
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 0.4);
  plan.set_error_rate(FaultOp::kRetrieve, 0.4);
  FaultInjector interleaved(plan);
  FaultInjector extract_only(plan);
  for (int i = 0; i < 200; ++i) {
    (void)interleaved.Decide(0, FaultOp::kRetrieve, 0.0);
    EXPECT_EQ(interleaved.Decide(0, FaultOp::kExtract, 0.0).ok(),
              extract_only.Decide(0, FaultOp::kExtract, 0.0).ok())
        << "streams coupled at step " << i;
  }
}

TEST(FaultInjectorTest, BackoffStreamsArePerSideAndOp) {
  // Side 1's backoff sequence must be invariant to side 2's activity and
  // rates: the regression this guards is a single shared backoff Rng, where
  // one side's retry storm reshuffled the other side's jitter draws.
  FaultPlan quiet;
  quiet.set_error_rate(FaultOp::kExtract, 0.5);
  FaultPlan stormy = quiet;
  stormy.op(1, FaultOp::kExtract).error_rate = 0.9;
  stormy.op(1, FaultOp::kRetrieve).error_rate = 0.9;

  FaultInjector reference(quiet);
  FaultInjector perturbed(stormy);
  for (int i = 0; i < 200; ++i) {
    // Side 2 churns through decisions and backoffs in one injector only.
    (void)perturbed.Decide(1, FaultOp::kExtract, 0.0);
    (void)perturbed.BackoffSeconds(1, FaultOp::kExtract, i % 3);
    (void)perturbed.BackoffSeconds(1, FaultOp::kRetrieve, i % 3);
    EXPECT_DOUBLE_EQ(reference.BackoffSeconds(0, FaultOp::kExtract, i % 3),
                     perturbed.BackoffSeconds(0, FaultOp::kExtract, i % 3))
        << "side-1 backoff perturbed by side-2 activity at step " << i;
  }
}

TEST(FaultInjectorTest, BackoffStreamsDifferAcrossSidesAndOps) {
  // With jitter on (the default), distinct (side, op) pairs draw from
  // distinct forked streams — their jitter sequences must not coincide.
  FaultPlan plan;
  FaultInjector injector(plan);
  int extract_vs_retrieve = 0;
  int side1_vs_side2 = 0;
  FaultInjector a(plan);
  FaultInjector b(plan);
  FaultInjector c(plan);
  for (int i = 0; i < 50; ++i) {
    if (a.BackoffSeconds(0, FaultOp::kExtract, 0) !=
        b.BackoffSeconds(0, FaultOp::kRetrieve, 0)) {
      ++extract_vs_retrieve;
    }
    if (injector.BackoffSeconds(0, FaultOp::kExtract, 0) !=
        c.BackoffSeconds(1, FaultOp::kExtract, 0)) {
      ++side1_vs_side2;
    }
  }
  EXPECT_GT(extract_vs_retrieve, 0);
  EXPECT_GT(side1_vs_side2, 0);
}

// --------------------------------------------------------------------------
// Execution-level tests: faults threaded through the join executors.
// --------------------------------------------------------------------------

class FaultExecutionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinPlanSpec ScanPlan() {
    JoinPlanSpec plan;
    plan.algorithm = JoinAlgorithmKind::kIndependent;
    plan.theta1 = plan.theta2 = 0.4;
    plan.retrieval1 = RetrievalStrategyKind::kScan;
    plan.retrieval2 = RetrievalStrategyKind::kScan;
    return plan;
  }

  static JoinPlanSpec ZgjnPlan() {
    JoinPlanSpec plan;
    plan.algorithm = JoinAlgorithmKind::kZigZag;
    plan.theta1 = plan.theta2 = 0.4;
    return plan;
  }

  static Result<JoinExecutionResult> RunWithFaults(const JoinPlanSpec& plan,
                                                   const FaultPlan* faults) {
    JoinExecutionOptions options;
    options.stop_rule = StopRule::kOracleQuality;
    options.requirement.min_good_tuples = 20;
    options.requirement.max_bad_tuples = 100000;
    options.fault_plan = faults;
    return bench().RunPlan(plan, options);
  }

  static void ExpectIdenticalRuns(const JoinExecutionResult& a,
                                  const JoinExecutionResult& b) {
    EXPECT_EQ(a.final_point.docs_retrieved1, b.final_point.docs_retrieved1);
    EXPECT_EQ(a.final_point.docs_retrieved2, b.final_point.docs_retrieved2);
    EXPECT_EQ(a.final_point.docs_processed1, b.final_point.docs_processed1);
    EXPECT_EQ(a.final_point.docs_processed2, b.final_point.docs_processed2);
    EXPECT_EQ(a.final_point.queries1, b.final_point.queries1);
    EXPECT_EQ(a.final_point.queries2, b.final_point.queries2);
    EXPECT_EQ(a.final_point.extracted1, b.final_point.extracted1);
    EXPECT_EQ(a.final_point.extracted2, b.final_point.extracted2);
    EXPECT_EQ(a.final_point.docs_dropped1, b.final_point.docs_dropped1);
    EXPECT_EQ(a.final_point.docs_dropped2, b.final_point.docs_dropped2);
    EXPECT_EQ(a.final_point.ops_retried1, b.final_point.ops_retried1);
    EXPECT_EQ(a.final_point.ops_retried2, b.final_point.ops_retried2);
    EXPECT_EQ(a.final_point.good_join_tuples, b.final_point.good_join_tuples);
    EXPECT_EQ(a.final_point.bad_join_tuples, b.final_point.bad_join_tuples);
    EXPECT_DOUBLE_EQ(a.final_point.seconds, b.final_point.seconds);
    EXPECT_EQ(a.trajectory.size(), b.trajectory.size());
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.deadline_exceeded, b.deadline_exceeded);
  }

  static Workbench* bench_;
};

Workbench* FaultExecutionTest::bench_ = nullptr;

// Guard: a zero-rate fault plan must be bit-identical to no plan at all.
TEST_F(FaultExecutionTest, ZeroRatePlanDoesNotPerturbExecution) {
  auto plain = RunWithFaults(ScanPlan(), nullptr);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_FALSE(plain->degraded);

  const FaultPlan zero_plan;  // all rates zero, no deadline
  auto with_plan = RunWithFaults(ScanPlan(), &zero_plan);
  ASSERT_TRUE(with_plan.ok()) << with_plan.status().ToString();
  EXPECT_FALSE(with_plan->degraded);
  ExpectIdenticalRuns(*plain, *with_plan);
}

// Guard: the same seed + plan reproduces a faulty execution exactly.
TEST_F(FaultExecutionTest, SameSeedReproducesFaultyRun) {
  FaultPlan plan;
  plan.seed = 4242;
  plan.set_error_rate(FaultOp::kExtract, 0.1);
  plan.set_error_rate(FaultOp::kRetrieve, 0.05);
  auto first = RunWithFaults(ScanPlan(), &plan);
  auto second = RunWithFaults(ScanPlan(), &plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  ExpectIdenticalRuns(*first, *second);
}

TEST_F(FaultExecutionTest, TransientErrorsAreRetriedAndAbsorbed) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 0.2);
  plan.retry.max_attempts = 6;  // enough that 0.2^6 drops are ~never seen
  plan.breaker.failure_threshold = 0;
  auto faulty = RunWithFaults(ScanPlan(), &plan);
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  EXPECT_GT(faulty->final_point.ops_retried1 + faulty->final_point.ops_retried2, 0);
  EXPECT_EQ(faulty->final_point.docs_dropped1 + faulty->final_point.docs_dropped2, 0);
  EXPECT_FALSE(faulty->degraded);
  // Retries costed simulated time: the faulty run is slower than a clean one.
  auto clean = RunWithFaults(ScanPlan(), nullptr);
  ASSERT_TRUE(clean.ok());
  EXPECT_GT(faulty->final_point.seconds, clean->final_point.seconds);
  EXPECT_EQ(faulty->final_point.good_join_tuples, clean->final_point.good_join_tuples);
}

TEST_F(FaultExecutionTest, ExhaustedRetriesDropDocumentsNotRuns) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 1.0);  // every extraction fails
  plan.retry.max_attempts = 2;
  plan.breaker.failure_threshold = 0;  // isolate drop accounting from breaker
  JoinExecutionOptions options;       // run to exhaustion: nothing is fatal
  options.fault_plan = &plan;
  auto result = bench().RunPlan(ScanPlan(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_FALSE(result->deadline_exceeded);
  EXPECT_EQ(result->final_point.docs_processed1, 0);
  EXPECT_EQ(result->final_point.docs_processed2, 0);
  EXPECT_EQ(result->final_point.good_join_tuples, 0);
  // Every retrieved document was dropped.
  EXPECT_EQ(result->final_point.docs_dropped1, result->final_point.docs_retrieved1);
  EXPECT_EQ(result->final_point.docs_dropped2, result->final_point.docs_retrieved2);
  EXPECT_GT(result->final_point.docs_dropped1, 0);
  EXPECT_GT(result->final_point.ops_failed1, 0);
}

TEST_F(FaultExecutionTest, BreakerTripsUnderSustainedExtractorFailure) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kExtract, 1.0);
  plan.retry.max_attempts = 1;
  plan.breaker.failure_threshold = 5;
  plan.breaker.cooldown_seconds = 1e9;  // stays open for the whole run
  JoinExecutionOptions options;
  options.fault_plan = &plan;
  auto result = bench().RunPlan(ScanPlan(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  // The breaker tripped on both sides and then fail-fasted the rest: far
  // fewer failed operations than documents, but every document dropped.
  EXPECT_GT(result->final_point.docs_dropped1, 0);
  EXPECT_GT(result->final_point.docs_dropped2, 0);
  EXPECT_EQ(result->final_point.ops_failed1, 5);
  EXPECT_EQ(result->final_point.ops_failed2, 5);
  EXPECT_EQ(result->final_point.docs_processed1, 0);
}

TEST_F(FaultExecutionTest, DeadlineReturnsPartialResult) {
  FaultPlan plan;
  plan.deadline_seconds = 100.0;
  JoinExecutionOptions options;  // exhaustion: only the deadline can stop it
  options.fault_plan = &plan;
  auto result = bench().RunPlan(ScanPlan(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_TRUE(result->degraded);
  EXPECT_FALSE(result->exhausted);
  // The run stopped just past the budget with partial output intact.
  EXPECT_GE(result->final_point.seconds, 100.0);
  EXPECT_LT(result->final_point.seconds, 110.0);
  EXPECT_GT(result->final_point.docs_processed1 +
                result->final_point.docs_processed2,
            0);
  JoinExecutionOptions clean_options;
  auto clean = bench().RunPlan(ScanPlan(), clean_options);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->exhausted);
  EXPECT_LT(result->final_point.docs_processed1 +
                result->final_point.docs_processed2,
            clean->final_point.docs_processed1 +
                clean->final_point.docs_processed2);
}

TEST_F(FaultExecutionTest, QueryFaultsDropProbesInZgjn) {
  FaultPlan plan;
  plan.set_error_rate(FaultOp::kQuery, 0.5);
  plan.retry.max_attempts = 1;  // half the probes are lost outright
  auto result = RunWithFaults(ZgjnPlan(), &plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->final_point.queries_dropped1 +
                result->final_point.queries_dropped2,
            0);
  EXPECT_TRUE(result->degraded);
}

TEST_F(FaultExecutionTest, OutageWindowDegradesThenRecovers) {
  FaultPlan plan;
  // Total outage early in the run; retries are exhausted inside the window
  // (backoff is too short to escape), so early documents are dropped, then
  // the run recovers and extracts normally.
  OutageWindow outage;
  outage.start_seconds = 10.0;
  outage.duration_seconds = 30.0;
  plan.outages.push_back(outage);
  plan.retry.max_attempts = 2;
  plan.breaker.failure_threshold = 0;
  auto result = RunWithFaults(ScanPlan(), &plan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  EXPECT_GT(result->final_point.docs_dropped1 + result->final_point.docs_dropped2,
            0);
  // Recovery: documents were still processed after the window.
  EXPECT_GT(result->final_point.docs_processed1 +
                result->final_point.docs_processed2,
            0);
  EXPECT_GT(result->final_point.good_join_tuples, 0);
}

// --------------------------------------------------------------------------
// Hedged execution.
// --------------------------------------------------------------------------

TEST_F(FaultExecutionTest, DisabledHedgeIsIdenticalToSequential) {
  FaultPlan plan;
  plan.seed = 11;
  plan.set_error_rate(FaultOp::kExtract, 0.15);
  auto sequential = RunWithFaults(ScanPlan(), &plan);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  FaultPlan zero_hedge = plan;
  zero_hedge.hedge.max_hedges = 0;     // disabled
  zero_hedge.hedge.delay_seconds = 9;  // must be inert while disabled
  auto with_field = RunWithFaults(ScanPlan(), &zero_hedge);
  ASSERT_TRUE(with_field.ok());
  ExpectIdenticalRuns(*sequential, *with_field);
  EXPECT_EQ(with_field->final_point.hedges1 + with_field->final_point.hedges2, 0);
}

TEST_F(FaultExecutionTest, HedgedRunIsDeterministic) {
  FaultPlan plan;
  plan.seed = 77;
  plan.set_error_rate(FaultOp::kExtract, 0.3);
  plan.hedge.max_hedges = 2;
  plan.hedge.delay_seconds = 0.25;
  auto first = RunWithFaults(ScanPlan(), &plan);
  auto second = RunWithFaults(ScanPlan(), &plan);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  ExpectIdenticalRuns(*first, *second);
  EXPECT_EQ(first->final_point.hedges1 + first->final_point.hedges2,
            second->final_point.hedges1 + second->final_point.hedges2);
}

TEST_F(FaultExecutionTest, HedgingLaunchesRacersAndCutsDrops) {
  // With one attempt and no hedges, failure prob per doc is f; with two
  // hedged racers it is f^3 — the hedged run must drop far fewer documents.
  FaultPlan sequential;
  sequential.set_error_rate(FaultOp::kExtract, 0.4);
  sequential.retry.max_attempts = 1;
  sequential.breaker.failure_threshold = 0;
  JoinExecutionOptions options;  // exhaustion
  options.fault_plan = &sequential;
  auto base = bench().RunPlan(ScanPlan(), options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  FaultPlan hedged = sequential;
  hedged.hedge.max_hedges = 2;
  hedged.hedge.delay_seconds = 0.25;
  JoinExecutionOptions hedged_options;
  hedged_options.fault_plan = &hedged;
  auto faster = bench().RunPlan(ScanPlan(), hedged_options);
  ASSERT_TRUE(faster.ok()) << faster.status().ToString();

  EXPECT_GT(faster->final_point.hedges1 + faster->final_point.hedges2, 0);
  EXPECT_LT(
      faster->final_point.docs_dropped1 + faster->final_point.docs_dropped2,
      base->final_point.docs_dropped1 + base->final_point.docs_dropped2);
  // More documents survive to be processed under hedging.
  EXPECT_GT(
      faster->final_point.docs_processed1 + faster->final_point.docs_processed2,
      base->final_point.docs_processed1 + base->final_point.docs_processed2);
}

// --------------------------------------------------------------------------
// Adaptive executor under faults.
// --------------------------------------------------------------------------

TEST_F(FaultExecutionTest, AdaptiveExecutorHonorsDeadline) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(inputs.ok());
  PlanEnumerationOptions enum_options;
  enum_options.include_zgjn = false;
  AdaptiveJoinExecutor adaptive(bench().resources(), *inputs, enum_options);

  AdaptiveOptions options;
  options.requirement.min_good_tuples = 1000000;  // unreachable: deadline rules
  options.requirement.max_bad_tuples = std::numeric_limits<int64_t>::max();
  options.initial_plan = ScanPlan();
  options.estimator.mixture.max_frequency = 100;
  FaultPlan faults;
  faults.deadline_seconds = 200.0;
  options.fault_plan = &faults;

  auto result = adaptive.Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deadline_exceeded);
  EXPECT_TRUE(result->degraded);
  EXPECT_GE(result->total_seconds, 200.0);
  EXPECT_LT(result->total_seconds, 220.0);
}

TEST_F(FaultExecutionTest, AdaptiveExecutorReoptimizesOnBreakerTrip) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(inputs.ok());
  PlanEnumerationOptions enum_options;
  enum_options.include_zgjn = false;
  AdaptiveJoinExecutor adaptive(bench().resources(), *inputs, enum_options);

  AdaptiveOptions options;
  options.requirement.min_good_tuples = 20;
  options.requirement.max_bad_tuples = std::numeric_limits<int64_t>::max();
  options.initial_plan = ScanPlan();
  options.estimator.mixture.max_frequency = 100;
  // Side 1's extractor fails hard enough to trip the breaker almost
  // immediately; the breaker path must fire well before the document
  // cadence (min_docs_for_estimate stays at its 600-doc default).
  FaultPlan faults;
  faults.op(0, FaultOp::kExtract).error_rate = 1.0;
  faults.retry.max_attempts = 1;
  faults.breaker.failure_threshold = 3;
  faults.breaker.cooldown_seconds = 1e9;
  options.fault_plan = &faults;
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;

  auto result = adaptive.Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->breaker_reoptimizations, 0);

  // With telemetry attached and a fault plan present, the run report
  // carries the predicted-vs-observed fault block; every side-1 document
  // failed extraction, so observed drops are substantial.
  ASSERT_TRUE(result->has_report);
  const obs::PredictedVsObserved& pvo = result->report.prediction;
  EXPECT_TRUE(pvo.has_fault_prediction);
  EXPECT_GT(pvo.observed_docs_dropped, 0.0);
  EXPECT_GE(pvo.observed_fault_seconds, 0.0);

  // The same run with the trigger disabled performs no breaker
  // re-optimizations.
  AdaptiveOptions disabled = options;
  disabled.reoptimize_on_breaker_trip = false;
  auto baseline = adaptive.Run(disabled);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  EXPECT_EQ(baseline->breaker_reoptimizations, 0);
}

}  // namespace
}  // namespace iejoin
