// Unit coverage for the supervisor's pure building blocks: the crash-loop
// breaker, the worker-channel frame codec, the request journal, and the
// jittered shed hint. Process-level failover itself is exercised end to end
// by the chaos harness (tests/chaos_client.py, label "chaos").

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "service/request_journal.h"
#include "service/service_protocol.h"
#include "service/supervisor.h"
#include "service/worker_channel.h"

namespace iejoin {
namespace service {
namespace {

// --------------------------------------------------------------------------
// CrashLoopBreaker
// --------------------------------------------------------------------------

TEST(CrashLoopBreakerTest, TripsOnKCrashesInsideWindow) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 3;
  config.window_seconds = 10.0;
  CrashLoopBreaker breaker(config);

  EXPECT_FALSE(breaker.RecordCrash(1.0));
  EXPECT_FALSE(breaker.RecordCrash(2.0));
  EXPECT_FALSE(breaker.open());
  EXPECT_TRUE(breaker.RecordCrash(3.0));
  EXPECT_TRUE(breaker.open());
}

TEST(CrashLoopBreakerTest, WindowSlidesOldCrashesOut) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 3;
  config.window_seconds = 10.0;
  CrashLoopBreaker breaker(config);

  EXPECT_FALSE(breaker.RecordCrash(0.0));
  EXPECT_FALSE(breaker.RecordCrash(5.0));
  // 20s later the first two crashes have aged out: this is crash 1 of a
  // fresh window, not crash 3 of the old one.
  EXPECT_FALSE(breaker.RecordCrash(20.0));
  EXPECT_EQ(breaker.recent_crashes(), 1);
  EXPECT_FALSE(breaker.open());
}

TEST(CrashLoopBreakerTest, OpenIsTerminal) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 1;
  config.window_seconds = 1.0;
  CrashLoopBreaker breaker(config);
  EXPECT_TRUE(breaker.RecordCrash(0.0));
  // Later crashes (any distance out) report "already open", never re-trip.
  EXPECT_FALSE(breaker.RecordCrash(100.0));
  EXPECT_TRUE(breaker.open());
}

TEST(CrashLoopBreakerTest, NonPositiveLimitDisables) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 0;
  CrashLoopBreaker breaker(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(breaker.RecordCrash(static_cast<double>(i)));
  }
  EXPECT_FALSE(breaker.open());
}

// --------------------------------------------------------------------------
// Worker-channel frame codec
// --------------------------------------------------------------------------

TEST(WorkerChannelFrameTest, HeaderRoundTrips) {
  const std::string payload = "{\"id\":\"r1\",\"tau_good\":5}";
  const std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kRequest), payload);
  ASSERT_EQ(header.size(), kFrameHeaderBytes);

  auto parsed = ParseFrameHeader(header);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, static_cast<uint8_t>(FrameType::kRequest));
  EXPECT_EQ(parsed->payload_len, payload.size());
  EXPECT_TRUE(ValidateFramePayload(*parsed, payload).ok());
}

TEST(WorkerChannelFrameTest, EmptyPayloadRoundTrips) {
  const std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kShutdown), "");
  auto parsed = ParseFrameHeader(header);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->payload_len, 0u);
  EXPECT_TRUE(ValidateFramePayload(*parsed, "").ok());
}

TEST(WorkerChannelFrameTest, BadMagicIsTornFrame) {
  std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kResponse), "x");
  header[0] ^= 0x5A;
  const auto parsed = ParseFrameHeader(header);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kUnavailable);
}

TEST(WorkerChannelFrameTest, OversizeLengthRejectedBeforeAllocation) {
  std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kResponse), "x");
  // Overwrite payload_len (bytes 5..8) with a length beyond the frame cap.
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    header[5 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  const auto parsed = ParseFrameHeader(header);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kUnavailable);
}

TEST(WorkerChannelFrameTest, CorruptPayloadFailsCrc) {
  const std::string payload = "response bytes";
  const std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kResponse), payload);
  auto parsed = ParseFrameHeader(header);
  ASSERT_TRUE(parsed.ok());
  std::string corrupted = payload;
  corrupted[3] ^= 0x01;
  EXPECT_FALSE(ValidateFramePayload(*parsed, corrupted).ok());
  EXPECT_FALSE(ValidateFramePayload(*parsed, payload.substr(1)).ok());
}

TEST(WorkerChannelFrameTest, WrongSizeHeaderRejected) {
  EXPECT_FALSE(ParseFrameHeader("short").ok());
  EXPECT_FALSE(ParseFrameHeader(std::string(kFrameHeaderBytes + 1, 'x')).ok());
}

// --------------------------------------------------------------------------
// Request journal
// --------------------------------------------------------------------------

JournalRecord MakeRecord(JournalEvent event, uint64_t seq, uint32_t worker,
                         std::string id = std::string()) {
  JournalRecord record;
  record.event = event;
  record.seq = seq;
  record.worker = worker;
  record.id = std::move(id);
  return record;
}

TEST(RequestJournalTest, RecordsRoundTrip) {
  std::string image;
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kEpoch, 1, 0));
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kAdmit, 1, 0, "r1"));
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kDispatch, 1, 2, "r1"));
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kRespond, 1, 2, "r1"));

  size_t torn = 99;
  const auto records = ParseJournalRecords(image, &torn);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(records[1].event, JournalEvent::kAdmit);
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[1].id, "r1");
  EXPECT_EQ(records[2].worker, 2u);
}

TEST(RequestJournalTest, TornTailStopsCleanly) {
  std::string image;
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kAdmit, 1, 0, "a"));
  const std::string full =
      EncodeJournalRecord(MakeRecord(JournalEvent::kRespond, 1, 1, "a"));
  // A crash mid-append leaves a prefix of the last record.
  image += full.substr(0, full.size() - 3);

  size_t torn = 0;
  const auto records = ParseJournalRecords(image, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(torn, full.size() - 3);
}

TEST(RequestJournalTest, CorruptRecordStopsScan) {
  std::string image;
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kAdmit, 1, 0, "a"));
  std::string second =
      EncodeJournalRecord(MakeRecord(JournalEvent::kRespond, 1, 1, "a"));
  second[second.size() - 1] ^= 0x40;  // flip a payload bit: CRC mismatch
  image += second;

  const auto records = ParseJournalRecords(image);
  EXPECT_EQ(records.size(), 1u);
}

TEST(RequestJournalTest, ArbitraryBytesNeverCrash) {
  // Deterministic pseudo-garbage; the parser must stop, not throw or scan
  // out of bounds.
  std::string garbage;
  uint32_t x = 0x12345678;
  for (int i = 0; i < 4096; ++i) {
    x = x * 1664525u + 1013904223u;
    garbage.push_back(static_cast<char>(x >> 24));
  }
  size_t torn = 0;
  const auto records = ParseJournalRecords(garbage, &torn);
  EXPECT_LE(records.size(), garbage.size() / 8);
  EXPECT_LE(torn, garbage.size());
}

TEST(RequestJournalTest, SummaryFindsUnansweredAndReplays) {
  std::vector<JournalRecord> records;
  records.push_back(MakeRecord(JournalEvent::kEpoch, 1, 0));
  records.push_back(MakeRecord(JournalEvent::kAdmit, 1, 0, "a"));
  records.push_back(MakeRecord(JournalEvent::kAdmit, 2, 0, "b"));
  records.push_back(MakeRecord(JournalEvent::kAdmit, 3, 0, "c"));
  records.push_back(MakeRecord(JournalEvent::kDispatch, 1, 0, "a"));
  records.push_back(MakeRecord(JournalEvent::kReplay, 1, 0, "a"));
  records.push_back(MakeRecord(JournalEvent::kRespond, 1, 1, "a"));
  records.push_back(MakeRecord(JournalEvent::kAbandon, 2, 1, "b"));
  // seq 3 was in flight when the supervisor died: admitted, never answered.

  const JournalSummary summary = SummarizeJournal(records);
  EXPECT_EQ(summary.admitted, 3);
  EXPECT_EQ(summary.responded, 2);  // kRespond + kAbandon both answer
  EXPECT_EQ(summary.replays, 1);
  EXPECT_EQ(summary.max_seq, 3u);
  ASSERT_EQ(summary.unanswered.size(), 1u);
  EXPECT_EQ(summary.unanswered[0], 3u);
}

TEST(RequestJournalTest, FileRoundTripThroughWriter) {
  const std::string path = ::testing::TempDir() + "/journal_roundtrip.bin";
  std::remove(path.c_str());
  {
    RequestJournal journal;
    ASSERT_TRUE(journal.Open(path).ok());
    journal.Append(MakeRecord(JournalEvent::kEpoch, 1, 0));
    journal.Append(MakeRecord(JournalEvent::kAdmit, 1, 0, "x"));
    journal.Append(MakeRecord(JournalEvent::kRespond, 1, 0, "x"));
  }
  auto summary = ReadJournalSummary(path);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->admitted, 1);
  EXPECT_EQ(summary->responded, 1);
  EXPECT_TRUE(summary->unanswered.empty());
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Jittered shed hint
// --------------------------------------------------------------------------

TEST(JitteredRetryAfterMsTest, StaysInHalfOpenRange) {
  for (uint64_t ordinal = 0; ordinal < 256; ++ordinal) {
    const int64_t hint = JitteredRetryAfterMs(50, 1, ordinal);
    EXPECT_GE(hint, 50);
    EXPECT_LT(hint, 100);
  }
}

TEST(JitteredRetryAfterMsTest, DeterministicPerSeedAndOrdinal) {
  EXPECT_EQ(JitteredRetryAfterMs(50, 7, 3), JitteredRetryAfterMs(50, 7, 3));
  // Different ordinals must not all collapse to one value.
  bool varied = false;
  const int64_t first = JitteredRetryAfterMs(1000, 7, 0);
  for (uint64_t ordinal = 1; ordinal < 32 && !varied; ++ordinal) {
    varied = JitteredRetryAfterMs(1000, 7, ordinal) != first;
  }
  EXPECT_TRUE(varied);
}

TEST(JitteredRetryAfterMsTest, TinyBasePassesThrough) {
  EXPECT_EQ(JitteredRetryAfterMs(0, 1, 0), 0);
  EXPECT_EQ(JitteredRetryAfterMs(1, 1, 0), 1);
}

}  // namespace
}  // namespace service
}  // namespace iejoin
