// Unit coverage for the supervisor's pure building blocks: the crash-loop
// breaker, the worker-channel frame codec, the request journal, and the
// jittered shed hint. Process-level failover itself is exercised end to end
// by the chaos harness (tests/chaos_client.py, label "chaos").

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "service/request_journal.h"
#include "service/service_protocol.h"
#include "estimation/sketch_bounds.h"
#include "service/shard.h"
#include "service/supervisor.h"
#include "service/worker_channel.h"

namespace iejoin {
namespace service {
namespace {

// --------------------------------------------------------------------------
// CrashLoopBreaker
// --------------------------------------------------------------------------

TEST(CrashLoopBreakerTest, TripsOnKCrashesInsideWindow) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 3;
  config.window_seconds = 10.0;
  CrashLoopBreaker breaker(config);

  EXPECT_FALSE(breaker.RecordCrash(1.0));
  EXPECT_FALSE(breaker.RecordCrash(2.0));
  EXPECT_FALSE(breaker.open());
  EXPECT_TRUE(breaker.RecordCrash(3.0));
  EXPECT_TRUE(breaker.open());
}

TEST(CrashLoopBreakerTest, WindowSlidesOldCrashesOut) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 3;
  config.window_seconds = 10.0;
  CrashLoopBreaker breaker(config);

  EXPECT_FALSE(breaker.RecordCrash(0.0));
  EXPECT_FALSE(breaker.RecordCrash(5.0));
  // 20s later the first two crashes have aged out: this is crash 1 of a
  // fresh window, not crash 3 of the old one.
  EXPECT_FALSE(breaker.RecordCrash(20.0));
  EXPECT_EQ(breaker.recent_crashes(), 1);
  EXPECT_FALSE(breaker.open());
}

TEST(CrashLoopBreakerTest, OpenIsTerminal) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 1;
  config.window_seconds = 1.0;
  CrashLoopBreaker breaker(config);
  EXPECT_TRUE(breaker.RecordCrash(0.0));
  // Later crashes (any distance out) report "already open", never re-trip.
  EXPECT_FALSE(breaker.RecordCrash(100.0));
  EXPECT_TRUE(breaker.open());
}

TEST(CrashLoopBreakerTest, NonPositiveLimitDisables) {
  CrashLoopBreaker::Config config;
  config.max_crashes = 0;
  CrashLoopBreaker breaker(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(breaker.RecordCrash(static_cast<double>(i)));
  }
  EXPECT_FALSE(breaker.open());
}

// --------------------------------------------------------------------------
// Worker-channel frame codec
// --------------------------------------------------------------------------

TEST(WorkerChannelFrameTest, HeaderRoundTrips) {
  const std::string payload = "{\"id\":\"r1\",\"tau_good\":5}";
  const std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kRequest), payload);
  ASSERT_EQ(header.size(), kFrameHeaderBytes);

  auto parsed = ParseFrameHeader(header);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, static_cast<uint8_t>(FrameType::kRequest));
  EXPECT_EQ(parsed->payload_len, payload.size());
  EXPECT_TRUE(ValidateFramePayload(*parsed, payload).ok());
}

TEST(WorkerChannelFrameTest, EmptyPayloadRoundTrips) {
  const std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kShutdown), "");
  auto parsed = ParseFrameHeader(header);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->payload_len, 0u);
  EXPECT_TRUE(ValidateFramePayload(*parsed, "").ok());
}

TEST(WorkerChannelFrameTest, BadMagicIsTornFrame) {
  std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kResponse), "x");
  header[0] ^= 0x5A;
  const auto parsed = ParseFrameHeader(header);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kUnavailable);
}

TEST(WorkerChannelFrameTest, OversizeLengthRejectedBeforeAllocation) {
  std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kResponse), "x");
  // Overwrite payload_len (bytes 5..8) with a length beyond the frame cap.
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    header[5 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  const auto parsed = ParseFrameHeader(header);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kUnavailable);
}

TEST(WorkerChannelFrameTest, CorruptPayloadFailsCrc) {
  const std::string payload = "response bytes";
  const std::string header =
      EncodeFrameHeader(static_cast<uint8_t>(FrameType::kResponse), payload);
  auto parsed = ParseFrameHeader(header);
  ASSERT_TRUE(parsed.ok());
  std::string corrupted = payload;
  corrupted[3] ^= 0x01;
  EXPECT_FALSE(ValidateFramePayload(*parsed, corrupted).ok());
  EXPECT_FALSE(ValidateFramePayload(*parsed, payload.substr(1)).ok());
}

TEST(WorkerChannelFrameTest, WrongSizeHeaderRejected) {
  EXPECT_FALSE(ParseFrameHeader("short").ok());
  EXPECT_FALSE(ParseFrameHeader(std::string(kFrameHeaderBytes + 1, 'x')).ok());
}

// --------------------------------------------------------------------------
// Request journal
// --------------------------------------------------------------------------

JournalRecord MakeRecord(JournalEvent event, uint64_t seq, uint32_t worker,
                         std::string id = std::string()) {
  JournalRecord record;
  record.event = event;
  record.seq = seq;
  record.worker = worker;
  record.id = std::move(id);
  return record;
}

TEST(RequestJournalTest, RecordsRoundTrip) {
  std::string image;
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kEpoch, 1, 0));
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kAdmit, 1, 0, "r1"));
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kDispatch, 1, 2, "r1"));
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kRespond, 1, 2, "r1"));

  size_t torn = 99;
  const auto records = ParseJournalRecords(image, &torn);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(torn, 0u);
  EXPECT_EQ(records[1].event, JournalEvent::kAdmit);
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[1].id, "r1");
  EXPECT_EQ(records[2].worker, 2u);
}

TEST(RequestJournalTest, TornTailStopsCleanly) {
  std::string image;
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kAdmit, 1, 0, "a"));
  const std::string full =
      EncodeJournalRecord(MakeRecord(JournalEvent::kRespond, 1, 1, "a"));
  // A crash mid-append leaves a prefix of the last record.
  image += full.substr(0, full.size() - 3);

  size_t torn = 0;
  const auto records = ParseJournalRecords(image, &torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(torn, full.size() - 3);
}

TEST(RequestJournalTest, CorruptRecordStopsScan) {
  std::string image;
  image += EncodeJournalRecord(MakeRecord(JournalEvent::kAdmit, 1, 0, "a"));
  std::string second =
      EncodeJournalRecord(MakeRecord(JournalEvent::kRespond, 1, 1, "a"));
  second[second.size() - 1] ^= 0x40;  // flip a payload bit: CRC mismatch
  image += second;

  const auto records = ParseJournalRecords(image);
  EXPECT_EQ(records.size(), 1u);
}

TEST(RequestJournalTest, ArbitraryBytesNeverCrash) {
  // Deterministic pseudo-garbage; the parser must stop, not throw or scan
  // out of bounds.
  std::string garbage;
  uint32_t x = 0x12345678;
  for (int i = 0; i < 4096; ++i) {
    x = x * 1664525u + 1013904223u;
    garbage.push_back(static_cast<char>(x >> 24));
  }
  size_t torn = 0;
  const auto records = ParseJournalRecords(garbage, &torn);
  EXPECT_LE(records.size(), garbage.size() / 8);
  EXPECT_LE(torn, garbage.size());
}

TEST(RequestJournalTest, SummaryFindsUnansweredAndReplays) {
  std::vector<JournalRecord> records;
  records.push_back(MakeRecord(JournalEvent::kEpoch, 1, 0));
  records.push_back(MakeRecord(JournalEvent::kAdmit, 1, 0, "a"));
  records.push_back(MakeRecord(JournalEvent::kAdmit, 2, 0, "b"));
  records.push_back(MakeRecord(JournalEvent::kAdmit, 3, 0, "c"));
  records.push_back(MakeRecord(JournalEvent::kDispatch, 1, 0, "a"));
  records.push_back(MakeRecord(JournalEvent::kReplay, 1, 0, "a"));
  records.push_back(MakeRecord(JournalEvent::kRespond, 1, 1, "a"));
  records.push_back(MakeRecord(JournalEvent::kAbandon, 2, 1, "b"));
  // seq 3 was in flight when the supervisor died: admitted, never answered.

  const JournalSummary summary = SummarizeJournal(records);
  EXPECT_EQ(summary.admitted, 3);
  EXPECT_EQ(summary.responded, 2);  // kRespond + kAbandon both answer
  EXPECT_EQ(summary.replays, 1);
  EXPECT_EQ(summary.max_seq, 3u);
  ASSERT_EQ(summary.unanswered.size(), 1u);
  EXPECT_EQ(summary.unanswered[0], 3u);
}

TEST(RequestJournalTest, FileRoundTripThroughWriter) {
  const std::string path = ::testing::TempDir() + "/journal_roundtrip.bin";
  std::remove(path.c_str());
  {
    RequestJournal journal;
    ASSERT_TRUE(journal.Open(path).ok());
    journal.Append(MakeRecord(JournalEvent::kEpoch, 1, 0));
    journal.Append(MakeRecord(JournalEvent::kAdmit, 1, 0, "x"));
    journal.Append(MakeRecord(JournalEvent::kRespond, 1, 0, "x"));
  }
  auto summary = ReadJournalSummary(path);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->admitted, 1);
  EXPECT_EQ(summary->responded, 1);
  EXPECT_TRUE(summary->unanswered.empty());
  std::remove(path.c_str());
}

// --------------------------------------------------------------------------
// Jittered shed hint
// --------------------------------------------------------------------------

TEST(JitteredRetryAfterMsTest, StaysInHalfOpenRange) {
  for (uint64_t ordinal = 0; ordinal < 256; ++ordinal) {
    const int64_t hint = JitteredRetryAfterMs(50, 1, ordinal);
    EXPECT_GE(hint, 50);
    EXPECT_LT(hint, 100);
  }
}

TEST(JitteredRetryAfterMsTest, DeterministicPerSeedAndOrdinal) {
  EXPECT_EQ(JitteredRetryAfterMs(50, 7, 3), JitteredRetryAfterMs(50, 7, 3));
  // Different ordinals must not all collapse to one value.
  bool varied = false;
  const int64_t first = JitteredRetryAfterMs(1000, 7, 0);
  for (uint64_t ordinal = 1; ordinal < 32 && !varied; ++ordinal) {
    varied = JitteredRetryAfterMs(1000, 7, ordinal) != first;
  }
  EXPECT_TRUE(varied);
}

TEST(JitteredRetryAfterMsTest, TinyBasePassesThrough) {
  EXPECT_EQ(JitteredRetryAfterMs(0, 1, 0), 0);
  EXPECT_EQ(JitteredRetryAfterMs(1, 1, 0), 1);
}

// ---------------------------------------------------------------------------
// Sharded scatter/gather: partition function and wire codecs
// ---------------------------------------------------------------------------

TEST(ShardPartitionTest, ShardOfDocIsDeterministicInRangeAndCovering) {
  for (uint32_t shard_count : {1u, 2u, 3u, 7u}) {
    std::vector<int64_t> per_shard(shard_count, 0);
    for (DocId doc = 0; doc < 5000; ++doc) {
      const uint32_t shard = ShardOfDoc(doc, shard_count);
      EXPECT_EQ(shard, ShardOfDoc(doc, shard_count));  // pure function
      ASSERT_LT(shard, shard_count);
      ++per_shard[shard];
    }
    // The splitmix64 finalizer spreads ids well enough that no shard is
    // starved or hoards the corpus.
    for (uint32_t shard = 0; shard < shard_count; ++shard) {
      EXPECT_GT(per_shard[shard], 5000 / static_cast<int64_t>(shard_count) / 2)
          << "shard " << shard << "/" << shard_count;
    }
    // ShardDocCount is exactly the partition census.
    int64_t total = 0;
    for (uint32_t shard = 0; shard < shard_count; ++shard) {
      EXPECT_EQ(ShardDocCount(5000, shard, shard_count), per_shard[shard]);
      total += ShardDocCount(5000, shard, shard_count);
    }
    EXPECT_EQ(total, 5000);
  }
  // Stability contract: the assignment is a pure function of (doc, count),
  // so a few pinned values double as a cross-platform regression anchor.
  EXPECT_EQ(ShardOfDoc(0, 3), ShardOfDoc(0, 3));
  EXPECT_EQ(ShardOfDoc(1, 1), 0u);
}

TEST(ShardCodecTest, RequestFrameRoundTrips) {
  ShardRequestFrame frame;
  frame.seq = 0x0123456789abcdefull;
  frame.shard_index = 2;
  frame.shard_count = 5;
  frame.theta1 = 0.375;
  frame.theta2 = 0.625;
  auto decoded = DecodeShardRequest(EncodeShardRequest(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, frame.seq);
  EXPECT_EQ(decoded->shard_index, 2u);
  EXPECT_EQ(decoded->shard_count, 5u);
  EXPECT_DOUBLE_EQ(decoded->theta1, 0.375);
  EXPECT_DOUBLE_EQ(decoded->theta2, 0.625);
  EXPECT_FALSE(DecodeShardRequest("").ok());
  EXPECT_FALSE(DecodeShardRequest("short").ok());
}

TEST(ShardCodecTest, PartialFrameRoundTripsBatches) {
  std::vector<ShardDocResult> docs(2);
  docs[0].side = 0;
  docs[0].doc = 41;
  ExtractedTuple tuple;
  tuple.join_value = 7;
  tuple.second_value = 9;
  tuple.doc_id = 41;
  tuple.sentence_index = 3;
  tuple.similarity = 0.875;
  tuple.ground_truth_good = true;
  docs[0].batch.push_back(tuple);
  docs[1].side = 1;
  docs[1].doc = 99;  // empty batch: extraction found nothing — still a fact
  const std::string payload = EncodeShardPartial(77, docs);
  uint64_t seq = 0;
  auto decoded = DecodeShardPartial(payload, &seq);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(seq, 77u);
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].side, 0);
  EXPECT_EQ((*decoded)[0].doc, 41);
  ASSERT_EQ((*decoded)[0].batch.size(), 1u);
  EXPECT_EQ((*decoded)[0].batch[0].join_value, 7);
  EXPECT_EQ((*decoded)[0].batch[0].second_value, 9);
  EXPECT_EQ((*decoded)[0].batch[0].sentence_index, 3u);
  EXPECT_DOUBLE_EQ((*decoded)[0].batch[0].similarity, 0.875);
  EXPECT_TRUE((*decoded)[0].batch[0].ground_truth_good);
  EXPECT_TRUE((*decoded)[1].batch.empty());

  // Truncation and corruption surface as decode errors, never as silent
  // partial ingestion.
  for (size_t cut : {size_t{0}, payload.size() / 2, payload.size() - 1}) {
    uint64_t ignored = 0;
    EXPECT_FALSE(DecodeShardPartial(payload.substr(0, cut), &ignored).ok())
        << "cut=" << cut;
  }
}

TEST(ShardCodecTest, DoneFrameRoundTripsSketches) {
  ShardDoneFrame done;
  done.seq = 5;
  done.cancelled = true;
  done.docs[0] = 10;
  done.docs[1] = 20;
  done.tuples[0] = 30;
  done.tuples[1] = 40;
  for (TokenId value = 0; value < 600; ++value) done.sketches[0].Add(value);
  done.sketches[1].Add(12345);
  auto decoded = DecodeShardDone(EncodeShardDone(done));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->seq, 5u);
  EXPECT_TRUE(decoded->cancelled);
  EXPECT_EQ(decoded->docs[0], 10);
  EXPECT_EQ(decoded->docs[1], 20);
  EXPECT_EQ(decoded->tuples[0], 30);
  EXPECT_EQ(decoded->tuples[1], 40);
  for (int side = 0; side < 2; ++side) {
    EXPECT_EQ(decoded->sketches[side].k(), done.sketches[side].k());
    EXPECT_EQ(decoded->sketches[side].inserted(),
              done.sketches[side].inserted());
    EXPECT_EQ(decoded->sketches[side].hashes(), done.sketches[side].hashes());
  }
  EXPECT_FALSE(DecodeShardDone("").ok());
  EXPECT_FALSE(DecodeShardDone(EncodeShardDone(done).substr(1)).ok());
}

TEST(ShardCodecTest, MergedShardSketchesEqualWholeStreamSketch) {
  // The gather path's estimation claim: per-shard KMV sketches merged on the
  // supervisor are exactly the sketch one pass over the whole corpus builds.
  KmvSketch whole(64);
  KmvSketch shards[3] = {KmvSketch(64), KmvSketch(64), KmvSketch(64)};
  for (DocId doc = 0; doc < 2000; ++doc) {
    const TokenId value = static_cast<TokenId>((doc * 2654435761u) % 911);
    whole.Add(value);
    shards[ShardOfDoc(doc, 3)].Add(value);
  }
  KmvSketch merged(64);
  for (const KmvSketch& shard : shards) merged.Merge(shard);
  EXPECT_EQ(merged.hashes(), whole.hashes());
  EXPECT_EQ(merged.inserted(), whole.inserted());
  EXPECT_DOUBLE_EQ(merged.EstimateDistinct(), whole.EstimateDistinct());
}

}  // namespace
}  // namespace service
}  // namespace iejoin
