// End-to-end integration tests: full workbench pipeline, oracle model
// parameters, model-vs-execution agreement, optimizer choices validated by
// actual executions, zig-zag graph construction, and the adaptive executor.

#include <cmath>

#include <gtest/gtest.h>

#include "harness/workbench.h"
#include "join/zigzag_graph.h"
#include "model/join_models.h"
#include "optimizer/adaptive_executor.h"

namespace iejoin {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinExecutionResult RunToExhaustion(const JoinPlanSpec& plan) {
    auto executor = CreateJoinExecutor(plan, bench().resources());
    EXPECT_TRUE(executor.ok());
    JoinExecutionOptions options;
    options.stop_rule = StopRule::kExhaustion;
    if (plan.algorithm == JoinAlgorithmKind::kZigZag) {
      options.seed_values = bench().ZgjnSeeds(3);
    }
    auto result = (*executor)->Run(options);
    EXPECT_TRUE(result.ok());
    return std::move(result.value());
  }

  static Workbench* bench_;
};

Workbench* IntegrationTest::bench_ = nullptr;

// --------------------------------------------------------------------------
// Workbench wiring
// --------------------------------------------------------------------------

TEST_F(IntegrationTest, TrainingAndEvaluationShareVocabulary) {
  EXPECT_EQ(bench().scenario().vocabulary.get(),
            bench().training_scenario().vocabulary.get());
  EXPECT_EQ(bench().scenario().vocabulary.get(),
            bench().validation_scenario().vocabulary.get());
}

TEST_F(IntegrationTest, KnobCurvesAreUsable) {
  // tp(0.4) decently high, fp(0.8) small: the knob trade-off the paper's
  // plan space exploits exists.
  EXPECT_GT(bench().knobs1().TruePositiveRate(0.4), 0.6);
  EXPECT_LT(bench().knobs1().FalsePositiveRate(0.8), 0.2);
  EXPECT_GT(bench().knobs1().TruePositiveRate(0.4),
            bench().knobs1().TruePositiveRate(0.8));
}

TEST_F(IntegrationTest, ZgjnSeedsAreSharedGoodValues) {
  const auto seeds = bench().ZgjnSeeds(3);
  ASSERT_EQ(seeds.size(), 3u);
  const auto& t1 = bench().scenario().corpus1->ground_truth().value_frequencies;
  for (TokenId v : seeds) {
    ASSERT_TRUE(t1.count(v));
    EXPECT_GT(t1.at(v).good, 0);
  }
}

// --------------------------------------------------------------------------
// Oracle parameters
// --------------------------------------------------------------------------

TEST_F(IntegrationTest, OracleParamsMatchGroundTruth) {
  auto params = bench().OracleParams(0.4, 0.4, /*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  const auto& truth = bench().scenario().corpus1->ground_truth();
  EXPECT_EQ(params->relation1.num_documents, bench().database1().size());
  EXPECT_EQ(params->relation1.num_good_docs,
            static_cast<int64_t>(truth.good_docs.size()));
  EXPECT_EQ(params->relation1.num_good_values, truth.num_good_values);
  EXPECT_NEAR(params->relation1.good_freq.mean,
              static_cast<double>(truth.total_good_occurrences) /
                  static_cast<double>(truth.num_good_values),
              1e-9);
  EXPECT_EQ(params->num_agg,
            static_cast<int64_t>(bench().scenario().values_gg.size()));
  EXPECT_GT(params->relation1.tp, params->relation1.fp);
  EXPECT_GT(params->relation1.mean_query_hits, 0.0);
  EXPECT_GT(params->relation1.aqg_good_occ_boost, 0.5);
  EXPECT_FALSE(params->relation1.aqg_queries.empty());
}

TEST_F(IntegrationTest, OracleParamsThetaChangesOnlyKnobRates) {
  auto loose = bench().OracleParams(0.4, 0.4, false);
  auto strict = bench().OracleParams(0.8, 0.8, false);
  ASSERT_TRUE(loose.ok() && strict.ok());
  EXPECT_GT(loose->relation1.tp, strict->relation1.tp);
  EXPECT_GT(loose->relation1.fp, strict->relation1.fp);
  EXPECT_EQ(loose->relation1.num_good_docs, strict->relation1.num_good_docs);
  EXPECT_EQ(loose->num_abb, strict->num_abb);
}

// --------------------------------------------------------------------------
// Model vs actual execution
// --------------------------------------------------------------------------

TEST_F(IntegrationTest, IdjnModelTracksExecution) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.4;
  plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
  const JoinExecutionResult actual = RunToExhaustion(plan);
  auto params = bench().OracleParams(0.4, 0.4, false);
  ASSERT_TRUE(params.ok());
  const QualityEstimate est = EstimateIdjn(
      *params, plan.retrieval1, plan.retrieval2,
      PlanEffort{bench().database1().size(), bench().database2().size()},
      bench().config().costs, bench().config().costs);
  // Within a factor of 1.6 at full effort (Small corpora are noisy).
  const double good_ratio =
      est.expected_good / static_cast<double>(actual.final_point.good_join_tuples);
  const double bad_ratio =
      est.expected_bad / static_cast<double>(actual.final_point.bad_join_tuples);
  EXPECT_GT(good_ratio, 1.0 / 1.6);
  EXPECT_LT(good_ratio, 1.6);
  EXPECT_GT(bad_ratio, 1.0 / 1.6);
  EXPECT_LT(bad_ratio, 1.6);
  // Predicted time is exact for scan/scan.
  EXPECT_NEAR(est.seconds, actual.final_point.seconds, 1e-6);
}

TEST_F(IntegrationTest, OijnModelTracksExecution) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kOuterInner;
  plan.theta1 = plan.theta2 = 0.4;
  plan.outer_is_relation1 = true;
  plan.retrieval1 = RetrievalStrategyKind::kScan;
  const JoinExecutionResult actual = RunToExhaustion(plan);
  auto params = bench().OracleParams(0.4, 0.4, false);
  ASSERT_TRUE(params.ok());
  const QualityEstimate est =
      EstimateOijn(*params, true, RetrievalStrategyKind::kScan,
                   bench().database1().size(), bench().config().costs,
                   bench().config().costs);
  const double good_ratio =
      est.expected_good / static_cast<double>(actual.final_point.good_join_tuples);
  EXPECT_GT(good_ratio, 0.5);
  EXPECT_LT(good_ratio, 2.0);
  // Predicted probe count within a factor of 2 of the real one.
  const double probe_ratio =
      est.queries2 / static_cast<double>(actual.final_point.queries2);
  EXPECT_GT(probe_ratio, 0.5);
  EXPECT_LT(probe_ratio, 2.0);
}

TEST_F(IntegrationTest, ZgjnModelSaturationCoversExecutionReach) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kZigZag;
  plan.theta1 = plan.theta2 = 0.4;
  const JoinExecutionResult actual = RunToExhaustion(plan);
  auto params = bench().OracleParams(0.4, 0.4, /*include_zgjn_pgfs=*/true);
  ASSERT_TRUE(params.ok());
  const auto points = SimulateZgjn(*params, 3, 64, bench().config().costs,
                                   bench().config().costs);
  ASSERT_FALSE(points.empty());
  // The no-stall model reaches at least as far as the real execution.
  EXPECT_GE(points.back().docs1 + points.back().docs2,
            0.9 * static_cast<double>(actual.final_point.docs_retrieved1 +
                                      actual.final_point.docs_retrieved2));
}

// --------------------------------------------------------------------------
// Zig-zag graph
// --------------------------------------------------------------------------

TEST_F(IntegrationTest, ZigZagGraphInvariants) {
  const auto extractor = bench().extractor1().WithTheta(0.4);
  auto graph = ZigZagGraphSide::Build(bench().database1(), *extractor);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_GT(graph->num_attribute_nodes(), 0);
  EXPECT_GT(graph->num_document_nodes(), 0);
  // Generate edges sum to the per-document degrees.
  int64_t degree_sum = 0;
  for (const auto& [doc, degree] : graph->generate_degree()) degree_sum += degree;
  EXPECT_EQ(degree_sum, graph->num_generate_edges());
  // Hit degrees are top-k capped.
  for (const auto& [value, degree] : graph->hit_degree()) {
    EXPECT_GE(degree, 1);
    EXPECT_LE(degree, bench().database1().max_results_per_query());
  }
  // Documents + barren docs cover the whole database.
  EXPECT_EQ(graph->num_document_nodes() + graph->num_barren_documents(),
            bench().database1().size());
  auto pak = graph->HitsPerAttribute();
  auto pdk = graph->AttributesPerDocument();
  ASSERT_TRUE(pak.ok() && pdk.ok());
  EXPECT_GT(pak->Mean(), 0.0);
  EXPECT_GT(pdk->Mean(), 0.0);
  EXPECT_GT(pdk->Pmf(0), 0.0);  // barren documents put mass at zero
}

TEST_F(IntegrationTest, StricterThetaShrinksZigZagGraph) {
  const auto loose = bench().extractor1().WithTheta(0.2);
  const auto strict = bench().extractor1().WithTheta(0.8);
  auto g_loose = ZigZagGraphSide::Build(bench().database1(), *loose);
  auto g_strict = ZigZagGraphSide::Build(bench().database1(), *strict);
  ASSERT_TRUE(g_loose.ok() && g_strict.ok());
  EXPECT_LT(g_strict->num_attribute_nodes(), g_loose->num_attribute_nodes());
  EXPECT_LT(g_strict->num_generate_edges(), g_loose->num_generate_edges());
}

// --------------------------------------------------------------------------
// Optimizer end-to-end
// --------------------------------------------------------------------------

TEST_F(IntegrationTest, OptimizerChoiceActuallyMeetsRequirement) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  const QualityAwareOptimizer optimizer(*inputs, PlanEnumerationOptions());
  QualityRequirement req;
  req.min_good_tuples = 30;
  req.max_bad_tuples = 3000;
  auto choice = optimizer.ChoosePlan(req);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  // Execute the chosen plan with the oracle stopping rule and verify it
  // delivers.
  auto executor = CreateJoinExecutor(choice->plan, bench().resources());
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement = req;
  if (choice->plan.algorithm == JoinAlgorithmKind::kZigZag) {
    options.seed_values = bench().ZgjnSeeds(3);
  }
  auto result = (*executor)->Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->requirement_met)
      << "chosen plan " << choice->plan.Describe() << " produced "
      << result->final_point.good_join_tuples << " good / "
      << result->final_point.bad_join_tuples << " bad";
}

TEST_F(IntegrationTest, OptimizerPrefersCheapPlansForTinyRequirements) {
  auto inputs = bench().OracleOptimizerInputs(true);
  ASSERT_TRUE(inputs.ok());
  const QualityAwareOptimizer optimizer(*inputs, PlanEnumerationOptions());
  QualityRequirement tiny;
  tiny.min_good_tuples = 2;
  tiny.max_bad_tuples = 100;
  QualityRequirement big;
  big.min_good_tuples = 200;
  big.max_bad_tuples = 1000000;
  auto tiny_choice = optimizer.ChoosePlan(tiny);
  auto big_choice = optimizer.ChoosePlan(big);
  ASSERT_TRUE(tiny_choice.ok() && big_choice.ok());
  EXPECT_LT(tiny_choice->estimate.seconds, big_choice->estimate.seconds);
}

// Parameterized sweep: for a grid of requirements, the optimizer's chosen
// plan — when executed with the oracle stop — actually delivers, or the
// optimizer honestly declines.
class RequirementSweepTest
    : public IntegrationTest,
      public ::testing::WithParamInterface<std::pair<int64_t, int64_t>> {};

TEST_P(RequirementSweepTest, ChosenPlanDeliversOrOptimizerDeclines) {
  const auto [tau_g, tau_b] = GetParam();
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  ASSERT_TRUE(inputs.ok());
  const QualityAwareOptimizer optimizer(*inputs, PlanEnumerationOptions());
  QualityRequirement req;
  req.min_good_tuples = tau_g;
  req.max_bad_tuples = tau_b;
  const auto choice = optimizer.ChoosePlan(req);
  if (!choice.ok()) {
    // Declining is acceptable only when the requirement is genuinely hard:
    // the margin-free model must also find the plan space thin.
    OptimizerInputs no_margin = *inputs;
    no_margin.good_margin = 1.0;
    const auto retry =
        QualityAwareOptimizer(no_margin, PlanEnumerationOptions()).ChoosePlan(req);
    if (retry.ok()) {
      GTEST_SKIP() << "declined within the robustness margin";
    }
    SUCCEED();
    return;
  }
  auto executor = CreateJoinExecutor(choice->plan, bench().resources());
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement = req;
  if (choice->plan.algorithm == JoinAlgorithmKind::kZigZag) {
    options.seed_values = bench().ZgjnSeeds(3);
  }
  auto result = (*executor)->Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->requirement_met)
      << choice->plan.Describe() << " produced "
      << result->final_point.good_join_tuples << " good / "
      << result->final_point.bad_join_tuples << " bad for (" << tau_g << ", "
      << tau_b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    TauGrid, RequirementSweepTest,
    ::testing::Values(std::make_pair<int64_t, int64_t>(2, 60),
                      std::make_pair<int64_t, int64_t>(8, 200),
                      std::make_pair<int64_t, int64_t>(20, 600),
                      std::make_pair<int64_t, int64_t>(50, 2000),
                      std::make_pair<int64_t, int64_t>(120, 4000),
                      std::make_pair<int64_t, int64_t>(250, 10000)));

// --------------------------------------------------------------------------
// Adaptive executor
// --------------------------------------------------------------------------

TEST_F(IntegrationTest, AdaptiveExecutorRunsAndReports) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(inputs.ok());
  PlanEnumerationOptions enum_options;
  enum_options.include_zgjn = false;  // adaptive seeds are probe-derived
  AdaptiveJoinExecutor adaptive(bench().resources(), *inputs, enum_options);
  AdaptiveOptions options;
  options.requirement.min_good_tuples = 25;
  options.requirement.max_bad_tuples = 100000;
  options.initial_plan.algorithm = JoinAlgorithmKind::kIndependent;
  options.initial_plan.theta1 = options.initial_plan.theta2 = 0.4;
  options.initial_plan.retrieval1 = options.initial_plan.retrieval2 =
      RetrievalStrategyKind::kScan;
  options.reestimate_every_docs = 300;
  options.min_docs_for_estimate = 600;
  options.estimator.mixture.max_frequency = 100;
  auto result = adaptive.Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->phases.empty());
  EXPECT_GT(result->total_seconds, 0.0);
  EXPECT_TRUE(result->has_estimate);
  // The estimate-driven stop should deliver the requirement (with oracle
  // verification) or have exhausted the final phase trying.
  EXPECT_TRUE(result->requirement_met || result->phases.back().exhausted);
  // Estimated parameters are in a sane range of the truth.
  const auto& truth = bench().scenario().corpus1->ground_truth();
  const double true_values =
      static_cast<double>(truth.num_good_values + truth.num_bad_values);
  const double est_values =
      static_cast<double>(result->final_estimate.relation1.num_good_values +
                          result->final_estimate.relation1.num_bad_values);
  EXPECT_GT(est_values, true_values / 4.0);
  EXPECT_LT(est_values, true_values * 4.0);
}

TEST_F(IntegrationTest, FullPipelineIsDeterministic) {
  WorkbenchConfig config;
  config.scenario = ScenarioSpec::Small();
  auto bench2 = Workbench::Create(config);
  ASSERT_TRUE(bench2.ok());
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.4;
  plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kFilteredScan;
  auto e1 = CreateJoinExecutor(plan, bench().resources());
  auto e2 = CreateJoinExecutor(plan, (*bench2)->resources());
  ASSERT_TRUE(e1.ok() && e2.ok());
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  auto r1 = (*e1)->Run(options);
  auto r2 = (*e2)->Run(options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->final_point.good_join_tuples, r2->final_point.good_join_tuples);
  EXPECT_EQ(r1->final_point.bad_join_tuples, r2->final_point.bad_join_tuples);
  EXPECT_DOUBLE_EQ(r1->final_point.seconds, r2->final_point.seconds);
}

}  // namespace
}  // namespace iejoin
