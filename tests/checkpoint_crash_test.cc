// Crash-consistency tests for checkpoint/resume: for every algorithm, a run
// resumed from ANY checkpoint must be bit-identical to the uninterrupted
// run — output tuples, trajectory, final metrics, and every re-written
// snapshot file. The fork-based matrix kills a real child process at each
// checkpoint boundary via the kill-point harness and resumes from the
// durable files it left behind.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/checkpoint_manager.h"
#include "checkpoint/join_checkpoint.h"
#include "checkpoint/kill_point.h"
#include "extraction/extraction_cache.h"
#include "harness/workbench.h"
#include "join/executor_checkpoint.h"
#include "join/join_executor.h"
#include "optimizer/adaptive_checkpoint.h"
#include "optimizer/adaptive_executor.h"

namespace iejoin {
namespace {

// ---------------------------------------------------------------------------
// Recording sinks: store every checkpoint after a full container + codec
// round trip, so resume tests exercise the serialized form, and keep the
// encoded bytes for file-level identity checks.
// ---------------------------------------------------------------------------

class RecordingSink : public CheckpointSink {
 public:
  Status Write(const ExecutorCheckpoint& checkpoint) override {
    std::vector<ckpt::SnapshotSection> sections;
    ckpt::AppendExecutorSections(checkpoint, &sections);
    std::string image = ckpt::EncodeSnapshot(sections);
    IEJOIN_ASSIGN_OR_RETURN(std::vector<ckpt::SnapshotSection> reread,
                            ckpt::DecodeSnapshot(image));
    ExecutorCheckpoint decoded;
    IEJOIN_RETURN_IF_ERROR(ckpt::DecodeExecutorSections(reread, &decoded));
    checkpoints.push_back(std::move(decoded));
    images.push_back(std::move(image));
    return Status::Ok();
  }

  std::vector<ExecutorCheckpoint> checkpoints;
  std::vector<std::string> images;
};

class AdaptiveRecordingSink : public AdaptiveCheckpointSink {
 public:
  Status WriteAdaptive(const AdaptiveCheckpoint& checkpoint) override {
    std::vector<ckpt::SnapshotSection> sections;
    ckpt::AppendAdaptiveSections(checkpoint, &sections);
    std::string image = ckpt::EncodeSnapshot(sections);
    IEJOIN_ASSIGN_OR_RETURN(std::vector<ckpt::SnapshotSection> reread,
                            ckpt::DecodeSnapshot(image));
    AdaptiveCheckpoint decoded;
    IEJOIN_RETURN_IF_ERROR(ckpt::DecodeAdaptiveSections(reread, &decoded));
    checkpoints.push_back(std::move(decoded));
    images.push_back(std::move(image));
    return Status::Ok();
  }

  std::vector<AdaptiveCheckpoint> checkpoints;
  std::vector<std::string> images;
};

// ---------------------------------------------------------------------------
// Fingerprints: hexfloat keeps doubles bit-exact, so string equality is
// bit-identity over everything a run produces.
// ---------------------------------------------------------------------------

void AppendPoint(const TrajectoryPoint& p, std::ostringstream* out) {
  *out << p.docs_retrieved1 << ',' << p.docs_retrieved2 << ','
       << p.docs_processed1 << ',' << p.docs_processed2 << ',' << p.queries1
       << ',' << p.queries2 << ',' << p.extracted1 << ',' << p.extracted2
       << ',' << p.docs_with_extraction1 << ',' << p.docs_with_extraction2
       << ',' << p.docs_dropped1 << ',' << p.docs_dropped2 << ','
       << p.queries_dropped1 << ',' << p.queries_dropped2 << ','
       << p.ops_retried1 << ',' << p.ops_retried2 << ',' << p.ops_failed1
       << ',' << p.ops_failed2 << ',' << p.breaker_trips1 << ','
       << p.breaker_trips2 << ',' << p.hedges1 << ',' << p.hedges2 << ','
       << p.good_join_tuples << ',' << p.bad_join_tuples << ',' << p.seconds
       << ';';
}

void AppendMetrics(const obs::MetricsSnapshot& m, std::ostringstream* out) {
  *out << "|counters:";
  for (const auto& [name, value] : m.counters) *out << name << '=' << value << ';';
  *out << "|gauges:";
  for (const auto& [name, value] : m.gauges) *out << name << '=' << value << ';';
  *out << "|histograms:";
  for (const auto& [name, h] : m.histograms) {
    *out << name << '=';
    for (double b : h.upper_bounds) *out << b << ',';
    for (int64_t c : h.bucket_counts) *out << c << ',';
    *out << h.count << ',' << h.sum << ';';
  }
}

std::string Fingerprint(const JoinExecutionResult& result,
                        const obs::MetricsSnapshot* metrics) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "final:";
  AppendPoint(result.final_point, &out);
  out << "|traj:" << result.trajectory.size() << ';';
  for (const auto& p : result.trajectory) AppendPoint(p, &out);
  out << "|state:" << result.state.good_join_tuples() << ','
      << result.state.bad_join_tuples() << ','
      << result.state.extracted_occurrences(0) << ','
      << result.state.extracted_occurrences(1) << ','
      << result.state.good_occurrences(0) << ','
      << result.state.good_occurrences(1) << ','
      << result.state.output_truncated();
  out << "|output:" << result.state.output().size() << ';';
  for (const auto& t : result.state.output()) {
    out << t.join_value << ',' << t.second1 << ',' << t.second2 << ','
        << t.is_good << ',' << t.confidence << ';';
  }
  out << "|flags:" << result.exhausted << result.requirement_met
      << result.degraded << result.deadline_exceeded << ','
      << result.fault_seconds;
  if (metrics != nullptr) AppendMetrics(*metrics, &out);
  return out.str();
}

std::string AdaptiveFingerprint(const AdaptiveResult& result) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "phases:" << result.phases.size() << ';';
  for (const AdaptivePhase& phase : result.phases) {
    out << phase.plan.Describe() << ',' << phase.seconds << ','
        << phase.switched_away << phase.exhausted << phase.degraded << ':';
    AppendPoint(phase.end_point, &out);
  }
  out << "|totals:" << result.total_seconds << ',' << result.good_join_tuples
      << ',' << result.bad_join_tuples << ',' << result.requirement_met << ','
      << result.degraded << result.deadline_exceeded << ','
      << result.docs_dropped << ',' << result.queries_dropped << ','
      << result.breaker_reoptimizations;
  out << "|estimate:" << result.has_estimate;
  if (result.has_estimate) {
    const JoinModelParams& e = result.final_estimate;
    out << ',' << e.relation1.num_documents << ',' << e.relation1.num_good_docs
        << ',' << e.relation1.good_freq.mean << ','
        << e.relation1.good_freq.second_moment << ','
        << e.relation2.num_documents << ',' << e.relation2.good_freq.mean
        << ',' << e.num_agg << ',' << e.num_agb << ',' << e.num_abg << ','
        << e.num_abb;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Fixture
// ---------------------------------------------------------------------------

class CheckpointCrashTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinPlanSpec PlanFor(JoinAlgorithmKind kind) {
    JoinPlanSpec plan;
    plan.algorithm = kind;
    plan.theta1 = plan.theta2 = 0.4;
    plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
    return plan;
  }

  /// Flaky extractors + occasional query timeouts: enough fault activity to
  /// exercise the RNG-stream and breaker state in every checkpoint.
  static fault::FaultPlan TestFaults() {
    fault::FaultPlan plan;
    plan.set_error_rate(fault::FaultOp::kExtract, 0.05);
    plan.set_timeout(fault::FaultOp::kQuery, 0.02, 1.5);
    return plan;
  }

  static JoinExecutionOptions BaseOptions(const fault::FaultPlan* faults,
                                          CheckpointSink* sink) {
    JoinExecutionOptions options;
    options.max_output_tuples = 20000;
    options.fault_plan = faults;
    options.checkpoint_sink = sink;
    options.checkpoint_every_docs = 32;
    return options;
  }

  static JoinExecutionResult Run(const JoinPlanSpec& plan,
                                 JoinExecutionOptions options,
                                 obs::MetricsRegistry* registry) {
    auto executor = CreateJoinExecutor(plan, bench().resources());
    EXPECT_TRUE(executor.ok()) << executor.status().ToString();
    if (plan.algorithm == JoinAlgorithmKind::kZigZag &&
        options.seed_values.empty()) {
      options.seed_values = bench().ZgjnSeeds(3);
    }
    options.metrics = registry;
    auto result = (*executor)->Run(options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result.value());
  }

  /// Resuming from EVERY checkpoint of a faulted run must reproduce the
  /// uninterrupted result bit-identically — including every snapshot the
  /// resumed run re-writes past the resume point.
  static void RunResumeMatrix(JoinAlgorithmKind kind) {
    const JoinPlanSpec plan = PlanFor(kind);
    const fault::FaultPlan faults = TestFaults();

    RecordingSink baseline_sink;
    obs::MetricsRegistry baseline_registry;
    const JoinExecutionResult baseline =
        Run(plan, BaseOptions(&faults, &baseline_sink), &baseline_registry);
    const obs::MetricsSnapshot baseline_metrics = baseline_registry.Snapshot();
    const std::string expected = Fingerprint(baseline, &baseline_metrics);
    ASSERT_GE(baseline_sink.checkpoints.size(), 3u)
        << "scenario too small to exercise checkpointing";

    for (size_t k = 0; k < baseline_sink.checkpoints.size(); ++k) {
      RecordingSink resumed_sink;
      obs::MetricsRegistry resumed_registry;
      JoinExecutionOptions options = BaseOptions(&faults, &resumed_sink);
      options.resume_from = &baseline_sink.checkpoints[k];
      const JoinExecutionResult resumed = Run(plan, options, &resumed_registry);
      const obs::MetricsSnapshot resumed_metrics = resumed_registry.Snapshot();
      EXPECT_EQ(Fingerprint(resumed, &resumed_metrics), expected)
          << JoinAlgorithmName(kind) << " resumed from checkpoint " << k;

      // The resumed run re-emits exactly the post-resume snapshots,
      // byte-identical to the uninterrupted run's.
      ASSERT_EQ(resumed_sink.images.size(),
                baseline_sink.images.size() - (k + 1));
      for (size_t j = 0; j < resumed_sink.images.size(); ++j) {
        EXPECT_EQ(resumed_sink.images[j], baseline_sink.images[k + 1 + j])
            << JoinAlgorithmName(kind) << " checkpoint " << k + 1 + j
            << " diverged after resume from " << k;
      }
    }
  }

  static Workbench* bench_;
};

Workbench* CheckpointCrashTest::bench_ = nullptr;

TEST_F(CheckpointCrashTest, IdjnResumeIsBitIdentical) {
  RunResumeMatrix(JoinAlgorithmKind::kIndependent);
}

TEST_F(CheckpointCrashTest, OijnResumeIsBitIdentical) {
  RunResumeMatrix(JoinAlgorithmKind::kOuterInner);
}

TEST_F(CheckpointCrashTest, ZgjnResumeIsBitIdentical) {
  RunResumeMatrix(JoinAlgorithmKind::kZigZag);
}

// ---------------------------------------------------------------------------
// Real-crash matrix: fork a child, let the kill-point harness _Exit(41) it
// right after the k-th durable snapshot lands, then resume the parent's way —
// from the files on disk — and require the bit-identical final result. The
// post-crash redo must also rewrite the remaining snapshot files so the
// crash directory converges to the uninterrupted directory, byte for byte.
// ---------------------------------------------------------------------------

class CrashMatrixTest : public CheckpointCrashTest {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/iejoin_crash_matrix";
    std::system(("rm -rf '" + root_ + "'").c_str());
    ASSERT_EQ(::mkdir(root_.c_str(), 0777), 0);
  }
  void TearDown() override {
    std::system(("rm -rf '" + root_ + "'").c_str());
  }

  static ckpt::CheckpointManifest Manifest() {
    ckpt::CheckpointManifest m;
    m["test"] = "crash-matrix";
    return m;
  }

  /// Runs the plan in a forked child armed to die at `after_hits` of `site`;
  /// returns the child's exit code.
  int RunChildToDeath(const JoinPlanSpec& plan, const fault::FaultPlan& faults,
                      const std::string& dir, const char* site,
                      int64_t after_hits) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      auto manager = ckpt::CheckpointManager::Open(dir, Manifest());
      if (!manager.ok()) std::_Exit(90);
      ckpt::ArmKillPointAtSite(site, after_hits, ckpt::kKillExitCode);
      JoinExecutionOptions options = BaseOptions(&faults, manager->get());
      auto executor = CreateJoinExecutor(plan, bench().resources());
      if (!executor.ok()) std::_Exit(90);
      auto result = (*executor)->Run(options);
      // Reaching here means the run finished before the armed kill fired.
      std::_Exit(result.ok() ? 89 : 90);
    }
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  static std::string FileBytes(const std::string& path) {
    auto contents = ckpt::ReadFileToString(path);
    EXPECT_TRUE(contents.ok()) << path << ": " << contents.status().ToString();
    return contents.ok() ? *contents : std::string();
  }

  std::string root_;
};

TEST_F(CrashMatrixTest, KillAtEveryCheckpointBoundaryAndResume) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const fault::FaultPlan faults = TestFaults();

  // Uninterrupted reference run with durable snapshots.
  const std::string base_dir = root_ + "/base";
  auto base_manager = ckpt::CheckpointManager::Open(base_dir, Manifest());
  ASSERT_TRUE(base_manager.ok()) << base_manager.status().ToString();
  const JoinExecutionResult baseline =
      Run(plan, BaseOptions(&faults, base_manager->get()), nullptr);
  const std::string expected = Fingerprint(baseline, nullptr);
  const int64_t total = (*base_manager)->checkpoints_written();
  ASSERT_GE(total, 3);

  for (int64_t kill = 1; kill <= total; ++kill) {
    const std::string dir = root_ + "/kill" + std::to_string(kill);
    ASSERT_EQ(RunChildToDeath(plan, faults, dir, "checkpoint.written", kill),
              ckpt::kKillExitCode)
        << "child did not die at checkpoint " << kill;

    // The crash left exactly `kill` durable snapshots; the newest is valid.
    auto loaded = ckpt::LoadLatestValidCheckpoint(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->sequence, kill);
    EXPECT_FALSE(loaded->is_adaptive);
    EXPECT_EQ(loaded->manifest.at("test"), "crash-matrix");

    // Resume from the durable snapshot, re-checkpointing into the same
    // directory (the post-crash redo path). The durable-bytes accumulator
    // must be seeded (see ckpt::LoadedCheckpoint) or the re-written images
    // embed a diverged checkpoint_bytes_written.
    auto manager = ckpt::CheckpointManager::Open(dir, Manifest());
    ASSERT_TRUE(manager.ok());
    JoinExecutionOptions options = BaseOptions(&faults, manager->get());
    options.resume_from = &loaded->executor;
    options.resume_checkpoint_bytes =
        loaded->executor.checkpoint_bytes_written + loaded->file_bytes;
    const JoinExecutionResult resumed = Run(plan, options, nullptr);
    EXPECT_EQ(Fingerprint(resumed, nullptr), expected)
        << "resume after crash at checkpoint " << kill;

    // Idempotent redo: the crash directory now holds the same snapshot
    // files as the uninterrupted run, byte for byte.
    for (int64_t seq = 1; seq <= total; ++seq) {
      const std::string name = ckpt::CheckpointFileName(seq);
      EXPECT_EQ(FileBytes(dir + "/" + name), FileBytes(base_dir + "/" + name))
          << name << " after crash at checkpoint " << kill;
    }
  }
}

TEST_F(CrashMatrixTest, KillMidOperationLosesOnlyTailWork) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const fault::FaultPlan faults = TestFaults();

  const std::string base_dir = root_ + "/base";
  auto base_manager = ckpt::CheckpointManager::Open(base_dir, Manifest());
  ASSERT_TRUE(base_manager.ok());
  const JoinExecutionResult baseline =
      Run(plan, BaseOptions(&faults, base_manager->get()), nullptr);
  const std::string expected = Fingerprint(baseline, nullptr);
  ASSERT_GE((*base_manager)->checkpoints_written(), 2);

  // Die mid-stride after the 40th committed extraction — between
  // checkpoints, the realistic crash position.
  const std::string dir = root_ + "/midop";
  ASSERT_EQ(RunChildToDeath(plan, faults, dir, "op.extract", 40),
            ckpt::kKillExitCode);

  auto loaded = ckpt::LoadLatestValidCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto manager = ckpt::CheckpointManager::Open(dir, Manifest());
  ASSERT_TRUE(manager.ok());
  JoinExecutionOptions options = BaseOptions(&faults, manager->get());
  options.resume_from = &loaded->executor;
  options.resume_checkpoint_bytes =
      loaded->executor.checkpoint_bytes_written + loaded->file_bytes;
  const JoinExecutionResult resumed = Run(plan, options, nullptr);
  EXPECT_EQ(Fingerprint(resumed, nullptr), expected);
}

TEST_F(CrashMatrixTest, ResumeFallsBackPastTornSnapshot) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kOuterInner);
  const fault::FaultPlan faults = TestFaults();

  const std::string dir = root_ + "/torn";
  auto manager = ckpt::CheckpointManager::Open(dir, Manifest());
  ASSERT_TRUE(manager.ok());
  const JoinExecutionResult baseline =
      Run(plan, BaseOptions(&faults, manager->get()), nullptr);
  const std::string expected = Fingerprint(baseline, nullptr);
  const int64_t total = (*manager)->checkpoints_written();
  ASSERT_GE(total, 2);

  // Tear the newest snapshot in half (a crash mid-write never produces this
  // — AtomicWriteFile renames only complete files — but disks rot).
  const std::string newest = dir + "/" + ckpt::CheckpointFileName(total);
  const std::string bytes = FileBytes(newest);
  {
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  auto loaded = ckpt::LoadLatestValidCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sequence, total - 1);

  JoinExecutionOptions options = BaseOptions(&faults, nullptr);
  options.checkpoint_sink = nullptr;
  options.resume_from = &loaded->executor;
  const JoinExecutionResult resumed = Run(plan, options, nullptr);
  EXPECT_EQ(Fingerprint(resumed, nullptr), expected);
}

// ---------------------------------------------------------------------------
// Adaptive executor: resuming from every adaptive checkpoint (mid-phase and
// phase-boundary alike) reproduces the uninterrupted adaptive result.
// ---------------------------------------------------------------------------

TEST_F(CheckpointCrashTest, AdaptiveResumeIsBitIdentical) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  PlanEnumerationOptions enum_options;
  enum_options.include_zgjn = false;

  const fault::FaultPlan faults = TestFaults();
  AdaptiveOptions options;
  options.requirement.min_good_tuples = 25;
  options.requirement.max_bad_tuples = 100000;
  options.initial_plan = PlanFor(JoinAlgorithmKind::kIndependent);
  options.reestimate_every_docs = 300;
  options.min_docs_for_estimate = 600;
  options.estimator.mixture.max_frequency = 100;
  options.max_switches = 2;
  options.fault_plan = &faults;
  options.checkpoint_every_docs = 64;

  AdaptiveRecordingSink baseline_sink;
  options.checkpoint_sink = &baseline_sink;
  AdaptiveJoinExecutor baseline_executor(bench().resources(), *inputs,
                                         enum_options);
  auto baseline = baseline_executor.Run(options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected = AdaptiveFingerprint(*baseline);
  ASSERT_GE(baseline_sink.checkpoints.size(), 2u);

  for (size_t k = 0; k < baseline_sink.checkpoints.size(); ++k) {
    AdaptiveRecordingSink resumed_sink;
    AdaptiveOptions resume_options = options;
    resume_options.checkpoint_sink = &resumed_sink;
    resume_options.resume_from = &baseline_sink.checkpoints[k];
    AdaptiveJoinExecutor executor(bench().resources(), *inputs, enum_options);
    auto resumed = executor.Run(resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(AdaptiveFingerprint(*resumed), expected)
        << "adaptive resume from checkpoint " << k
        << (baseline_sink.checkpoints[k].has_executor ? " (mid-phase)"
                                                      : " (phase boundary)");
    ASSERT_EQ(resumed_sink.images.size(),
              baseline_sink.images.size() - (k + 1));
    for (size_t j = 0; j < resumed_sink.images.size(); ++j) {
      EXPECT_EQ(resumed_sink.images[j], baseline_sink.images[k + 1 + j])
          << "adaptive checkpoint " << k + 1 + j
          << " diverged after resume from " << k;
    }
  }
}

// Adaptive executor with AdaptiveOptions::checkpoint_extraction_cache: every
// mid-phase checkpoint embeds the extraction cache's LRU image, and resuming
// from one into a FRESH cache restores it — the continuation (whose cache
// hit/miss counters land in the side counters, and whose hits change
// simulated time) must be bit-identical to the uninterrupted cached run,
// including every re-written snapshot image. Phase-boundary checkpoints
// carry no executor snapshot and hence no image (documented cold restart),
// so only mid-phase checkpoints are resumed here.
TEST_F(CheckpointCrashTest, AdaptiveWarmCacheResumeIsBitIdentical) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  PlanEnumerationOptions enum_options;
  enum_options.include_zgjn = false;

  AdaptiveOptions options;
  options.requirement.min_good_tuples = 25;
  options.requirement.max_bad_tuples = 100000;
  options.initial_plan = PlanFor(JoinAlgorithmKind::kIndependent);
  options.reestimate_every_docs = 300;
  options.min_docs_for_estimate = 600;
  options.estimator.mixture.max_frequency = 100;
  options.max_switches = 2;
  options.checkpoint_every_docs = 64;
  options.checkpoint_extraction_cache = true;

  AdaptiveRecordingSink baseline_sink;
  options.checkpoint_sink = &baseline_sink;
  ExtractionCache baseline_cache(8 << 20);
  options.extraction_cache = &baseline_cache;
  AdaptiveJoinExecutor baseline_executor(bench().resources(), *inputs,
                                         enum_options);
  auto baseline = baseline_executor.Run(options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const std::string expected = AdaptiveFingerprint(*baseline);

  size_t mid_phase = 0;
  size_t with_image = 0;
  for (size_t k = 0; k < baseline_sink.checkpoints.size(); ++k) {
    const AdaptiveCheckpoint& checkpoint = baseline_sink.checkpoints[k];
    if (!checkpoint.has_executor) continue;
    ++mid_phase;
    EXPECT_TRUE(checkpoint.executor.has_extraction_cache)
        << "mid-phase checkpoint " << k << " lost the cache image";
    with_image += checkpoint.executor.extraction_cache_entries.empty() ? 0 : 1;

    AdaptiveRecordingSink resumed_sink;
    ExtractionCache fresh_cache(8 << 20);
    AdaptiveOptions resume_options = options;
    resume_options.checkpoint_sink = &resumed_sink;
    resume_options.extraction_cache = &fresh_cache;
    resume_options.resume_from = &checkpoint;
    AdaptiveJoinExecutor executor(bench().resources(), *inputs, enum_options);
    auto resumed = executor.Run(resume_options);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(AdaptiveFingerprint(*resumed), expected)
        << "warm-cache adaptive resume from checkpoint " << k;
    ASSERT_EQ(resumed_sink.images.size(),
              baseline_sink.images.size() - (k + 1));
    for (size_t j = 0; j < resumed_sink.images.size(); ++j) {
      EXPECT_EQ(resumed_sink.images[j], baseline_sink.images[k + 1 + j])
          << "adaptive checkpoint " << k + 1 + j
          << " diverged after warm resume from " << k;
    }
  }
  ASSERT_GE(mid_phase, 2u);
  EXPECT_GE(with_image, 1u) << "no checkpoint ever carried cache entries";
}

// Kill points are inert when unarmed and count hits when armed.
TEST(KillPointTest, CountsAndDisarms) {
  ckpt::DisarmKillPoint();
  ckpt::KillPoint("op.extract");
  EXPECT_EQ(ckpt::KillPointHits(), 0);  // unarmed: nothing matches
  ckpt::ArmKillPointAtSite("op.extract", 100, ckpt::kKillExitCode);
  ckpt::KillPoint("op.query");    // wrong site: not a hit
  ckpt::KillPoint("op.extract");  // hit 1 of 100: survives
  EXPECT_EQ(ckpt::KillPointHits(), 1);
  ckpt::DisarmKillPoint();
  EXPECT_EQ(ckpt::KillPointHits(), 0);
}

}  // namespace
}  // namespace iejoin
