// Parallel execution determinism suite: the worker-pool document pipeline
// must produce byte-identical results, metrics, and checkpoint images at
// every thread count (the pool accelerates wall clock, nothing else), the
// extraction cache must leave results untouched while its hit/miss counters
// stay thread-count-invariant, and the ThreadPool/ParallelMap primitives
// must preserve submission order. Runs unlabeled so the TSan lane covers it.

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/join_checkpoint.h"
#include "checkpoint/snapshot_format.h"
#include "common/thread_pool.h"
#include "extraction/extraction_cache.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "obs/metrics.h"

namespace iejoin {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / ParallelMap primitives
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitTaskReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int64_t>> futures;
  for (int64_t i = 0; i < 100; ++i) {
    futures.push_back(pool.SubmitTask([i]() { return i * i; }));
  }
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int64_t> ran{0};
  std::vector<std::future<int64_t>> futures;
  {
    ThreadPool pool(2);
    for (int64_t i = 0; i < 64; ++i) {
      futures.push_back(pool.SubmitTask([&ran, i]() {
        ran.fetch_add(1);
        return i;
      }));
    }
  }  // Destructor joins only after every queued task ran.
  EXPECT_EQ(ran.load(), 64);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i);
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(3);
  const std::vector<int64_t> mapped =
      ParallelMap(&pool, 50, [](int64_t i) { return i * 3; });
  ASSERT_EQ(mapped.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(mapped[static_cast<size_t>(i)], i * 3);
  }
}

TEST(ThreadPoolTest, ParallelMapRunsInlineWithoutPool) {
  const std::vector<int64_t> mapped =
      ParallelMap(nullptr, 5, [](int64_t i) { return i + 1; });
  EXPECT_EQ(mapped, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

// ---------------------------------------------------------------------------
// Fingerprints: hexfloat keeps doubles bit-exact, so string equality is
// bit-identity over everything a run produces (mirrors the crash suite).
// ---------------------------------------------------------------------------

void AppendPoint(const TrajectoryPoint& p, std::ostringstream* out) {
  *out << p.docs_retrieved1 << ',' << p.docs_retrieved2 << ','
       << p.docs_processed1 << ',' << p.docs_processed2 << ',' << p.queries1
       << ',' << p.queries2 << ',' << p.extracted1 << ',' << p.extracted2
       << ',' << p.docs_with_extraction1 << ',' << p.docs_with_extraction2
       << ',' << p.docs_dropped1 << ',' << p.docs_dropped2 << ','
       << p.queries_dropped1 << ',' << p.queries_dropped2 << ','
       << p.ops_retried1 << ',' << p.ops_retried2 << ',' << p.ops_failed1
       << ',' << p.ops_failed2 << ',' << p.breaker_trips1 << ','
       << p.breaker_trips2 << ',' << p.hedges1 << ',' << p.hedges2 << ','
       << p.good_join_tuples << ',' << p.bad_join_tuples << ',' << p.seconds
       << ';';
}

bool IsWallClock(const std::string& name) {
  // `wall.`-prefixed metrics are the documented nondeterminism carve-out
  // (live thread-pool introspection); they never participate in bit-identity.
  return name.compare(0, 5, "wall.") == 0;
}

void AppendMetrics(const obs::MetricsSnapshot& m, std::ostringstream* out) {
  *out << "|counters:";
  for (const auto& [name, value] : m.counters) {
    if (IsWallClock(name)) continue;
    *out << name << '=' << value << ';';
  }
  *out << "|gauges:";
  for (const auto& [name, value] : m.gauges) {
    if (IsWallClock(name)) continue;
    *out << name << '=' << value << ';';
  }
  *out << "|histograms:";
  for (const auto& [name, h] : m.histograms) {
    *out << name << '=';
    for (double b : h.upper_bounds) *out << b << ',';
    for (int64_t c : h.bucket_counts) *out << c << ',';
    *out << h.count << ',' << h.sum << ';';
  }
}

std::string Fingerprint(const JoinExecutionResult& result,
                        const obs::MetricsSnapshot* metrics) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "final:";
  AppendPoint(result.final_point, &out);
  out << "|traj:" << result.trajectory.size() << ';';
  for (const auto& p : result.trajectory) AppendPoint(p, &out);
  out << "|state:" << result.state.good_join_tuples() << ','
      << result.state.bad_join_tuples() << ','
      << result.state.extracted_occurrences(0) << ','
      << result.state.extracted_occurrences(1) << ','
      << result.state.good_occurrences(0) << ','
      << result.state.good_occurrences(1) << ','
      << result.state.output_truncated();
  out << "|output:" << result.state.output().size() << ';';
  for (const auto& t : result.state.output()) {
    out << t.join_value << ',' << t.second1 << ',' << t.second2 << ','
        << t.is_good << ',' << t.confidence << ';';
  }
  out << "|flags:" << result.exhausted << result.requirement_met
      << result.degraded << result.deadline_exceeded << ','
      << result.fault_seconds;
  if (metrics != nullptr) AppendMetrics(*metrics, &out);
  return out.str();
}

/// Captures every delivered checkpoint as encoded snapshot bytes, so two
/// runs' checkpoint streams can be compared image by image.
class ImageSink : public CheckpointSink {
 public:
  Status Write(const ExecutorCheckpoint& checkpoint) override {
    std::vector<ckpt::SnapshotSection> sections;
    ckpt::AppendExecutorSections(checkpoint, &sections);
    images.push_back(ckpt::EncodeSnapshot(sections));
    return Status::Ok();
  }
  std::vector<std::string> images;
};

// ---------------------------------------------------------------------------
// Fixture: one small workbench shared by every determinism case. Pools are
// attached per run through JoinExecutionOptions, so a single bench serves
// every thread count.
// ---------------------------------------------------------------------------

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinPlanSpec PlanFor(JoinAlgorithmKind kind) {
    JoinPlanSpec plan;
    plan.algorithm = kind;
    plan.theta1 = plan.theta2 = 0.4;
    plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
    return plan;
  }

  static fault::FaultPlan TestFaults() {
    fault::FaultPlan plan;
    plan.set_error_rate(fault::FaultOp::kExtract, 0.05);
    plan.set_timeout(fault::FaultOp::kQuery, 0.02, 1.5);
    return plan;
  }

  struct RunCapture {
    std::string fingerprint;
    std::vector<std::string> checkpoint_images;
  };

  /// Runs the plan with the given pool (null = sequential) and returns the
  /// full bit-identity capture: result + metrics fingerprint and the byte
  /// images of every emitted checkpoint.
  static RunCapture Run(const JoinPlanSpec& plan, const fault::FaultPlan* faults,
                        ThreadPool* pool) {
    ImageSink sink;
    obs::MetricsRegistry registry;
    JoinExecutionOptions options;
    options.max_output_tuples = 20000;
    options.fault_plan = faults;
    options.checkpoint_sink = &sink;
    options.checkpoint_every_docs = 32;
    options.metrics = &registry;
    options.pool = pool;
    auto result = bench().RunPlan(plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    RunCapture capture;
    if (result.ok()) {
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      capture.fingerprint = Fingerprint(*result, &snapshot);
      capture.checkpoint_images = std::move(sink.images);
    }
    return capture;
  }

  /// threads=0 is the sequential legacy path; every parallel run must match
  /// it byte for byte.
  static void RunMatrix(JoinAlgorithmKind kind, const fault::FaultPlan* faults) {
    const JoinPlanSpec plan = PlanFor(kind);
    const RunCapture expected = Run(plan, faults, nullptr);
    ASSERT_FALSE(expected.fingerprint.empty());
    ASSERT_GE(expected.checkpoint_images.size(), 1u)
        << "scenario too small to exercise checkpointing";

    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const RunCapture parallel = Run(plan, faults, &pool);
      EXPECT_EQ(parallel.fingerprint, expected.fingerprint)
          << JoinAlgorithmName(kind) << " diverged at threads=" << threads;
      ASSERT_EQ(parallel.checkpoint_images.size(),
                expected.checkpoint_images.size())
          << JoinAlgorithmName(kind) << " threads=" << threads;
      for (size_t i = 0; i < expected.checkpoint_images.size(); ++i) {
        EXPECT_EQ(parallel.checkpoint_images[i], expected.checkpoint_images[i])
            << JoinAlgorithmName(kind) << " checkpoint " << i
            << " diverged at threads=" << threads;
      }
    }
  }

 private:
  static const Workbench* bench_;
};

const Workbench* ParallelDeterminismTest::bench_ = nullptr;

TEST_F(ParallelDeterminismTest, IdjnMatchesSequential) {
  RunMatrix(JoinAlgorithmKind::kIndependent, nullptr);
}

TEST_F(ParallelDeterminismTest, OijnMatchesSequential) {
  RunMatrix(JoinAlgorithmKind::kOuterInner, nullptr);
}

TEST_F(ParallelDeterminismTest, ZgjnMatchesSequential) {
  RunMatrix(JoinAlgorithmKind::kZigZag, nullptr);
}

TEST_F(ParallelDeterminismTest, IdjnMatchesSequentialUnderFaults) {
  const fault::FaultPlan faults = TestFaults();
  RunMatrix(JoinAlgorithmKind::kIndependent, &faults);
}

TEST_F(ParallelDeterminismTest, OijnMatchesSequentialUnderFaults) {
  const fault::FaultPlan faults = TestFaults();
  RunMatrix(JoinAlgorithmKind::kOuterInner, &faults);
}

TEST_F(ParallelDeterminismTest, ZgjnMatchesSequentialUnderFaults) {
  const fault::FaultPlan faults = TestFaults();
  RunMatrix(JoinAlgorithmKind::kZigZag, &faults);
}

// ---------------------------------------------------------------------------
// Extraction cache: results cache-invariant, counters thread-invariant,
// θ change invalidates by construction (new key).
// ---------------------------------------------------------------------------

class ExtractionCacheTest : public ParallelDeterminismTest {
 protected:
  struct CachedRun {
    std::string result_fingerprint;  // result only — no metrics
    int64_t hits = 0;
    int64_t misses = 0;
  };

  static CachedRun RunWithCache(const JoinPlanSpec& plan, ExtractionCache* cache,
                                ThreadPool* pool) {
    obs::MetricsRegistry registry;
    JoinExecutionOptions options;
    options.max_output_tuples = 20000;
    options.metrics = &registry;
    options.pool = pool;
    options.extraction_cache = cache;
    auto result = bench().RunPlan(plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    CachedRun run;
    if (result.ok()) {
      run.result_fingerprint = Fingerprint(*result, nullptr);
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      for (const auto& [name, value] : snapshot.counters) {
        if (name == "side1.cache_hits" || name == "side2.cache_hits") {
          run.hits += value;
        } else if (name == "side1.cache_misses" ||
                   name == "side2.cache_misses") {
          run.misses += value;
        }
      }
    }
    return run;
  }
};

TEST_F(ExtractionCacheTest, RepeatRunsHitAndResultsAreCacheInvariant) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const std::string uncached =
      RunWithCache(plan, nullptr, nullptr).result_fingerprint;

  ExtractionCache cache;
  const CachedRun first = RunWithCache(plan, &cache, nullptr);
  EXPECT_EQ(first.hits, 0) << "each doc is extracted at most once per run";
  EXPECT_GT(first.misses, 0);
  EXPECT_GT(cache.size(), 0);
  // The simulated execution is cache-invariant: same bytes with and without.
  EXPECT_EQ(first.result_fingerprint, uncached);

  const CachedRun second = RunWithCache(plan, &cache, nullptr);
  EXPECT_GT(second.hits, 0) << "second run over the same docs must hit";
  EXPECT_EQ(second.hits, first.misses)
      << "every insert from run 1 is re-read in run 2";
  EXPECT_EQ(second.misses, 0);
  EXPECT_EQ(second.result_fingerprint, uncached);
}

TEST_F(ExtractionCacheTest, ThetaChangeMissesThenHitsAtThatTheta) {
  ExtractionCache cache;
  JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const CachedRun at_04 = RunWithCache(plan, &cache, nullptr);
  EXPECT_GT(at_04.misses, 0);

  // θ is part of the cache key, so changing it invalidates by construction.
  plan.theta1 = plan.theta2 = 0.6;
  const CachedRun at_06 = RunWithCache(plan, &cache, nullptr);
  EXPECT_EQ(at_06.hits, 0) << "entries at θ=0.4 must not serve θ=0.6";
  EXPECT_GT(at_06.misses, 0);

  const CachedRun at_06_again = RunWithCache(plan, &cache, nullptr);
  EXPECT_EQ(at_06_again.hits, at_06.misses);
  EXPECT_EQ(at_06_again.misses, 0);
}

TEST_F(ExtractionCacheTest, HitCountersAreThreadCountInvariant) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kOuterInner);

  ExtractionCache sequential_cache;
  const CachedRun seq1 = RunWithCache(plan, &sequential_cache, nullptr);
  const CachedRun seq2 = RunWithCache(plan, &sequential_cache, nullptr);

  ThreadPool pool(4);
  ExtractionCache parallel_cache;
  const CachedRun par1 = RunWithCache(plan, &parallel_cache, &pool);
  const CachedRun par2 = RunWithCache(plan, &parallel_cache, &pool);

  EXPECT_EQ(par1.hits, seq1.hits);
  EXPECT_EQ(par1.misses, seq1.misses);
  EXPECT_EQ(par2.hits, seq2.hits);
  EXPECT_EQ(par2.misses, seq2.misses);
  EXPECT_EQ(parallel_cache.size(), sequential_cache.size());
  EXPECT_EQ(par1.result_fingerprint, seq1.result_fingerprint);
  EXPECT_EQ(par2.result_fingerprint, seq2.result_fingerprint);
}

// ---------------------------------------------------------------------------
// Optimizer plan scoring fans out over the same pool; the ranking must be
// identical to the sequential one (enumeration order + stable sort).
// ---------------------------------------------------------------------------

TEST_F(ParallelDeterminismTest, OptimizerRankingIsThreadCountInvariant) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  QualityRequirement req;
  req.min_good_tuples = 50;
  req.max_bad_tuples = 100000;

  const auto describe = [&req](const OptimizerInputs& in) {
    const QualityAwareOptimizer optimizer(in, PlanEnumerationOptions());
    std::ostringstream out;
    out << std::hexfloat;
    for (const PlanChoice& c : optimizer.RankPlans(req)) {
      out << c.plan.Describe() << ',' << c.feasible << ','
          << c.estimate.expected_good << ',' << c.estimate.expected_bad << ','
          << c.estimate.seconds << ';';
    }
    return out.str();
  };

  OptimizerInputs sequential = *inputs;
  sequential.pool = nullptr;
  const std::string expected = describe(sequential);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    OptimizerInputs parallel = *inputs;
    parallel.pool = &pool;
    EXPECT_EQ(describe(parallel), expected) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace iejoin
