// Parallel execution determinism suite: the worker-pool document pipeline
// must produce byte-identical results, metrics, and checkpoint images at
// every thread count (the pool accelerates wall clock, nothing else), the
// extraction cache must leave results untouched while its hit/miss counters
// stay thread-count-invariant, and the ThreadPool/ParallelMap primitives
// must preserve submission order. Runs unlabeled so the TSan lane covers it.

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/join_checkpoint.h"
#include "checkpoint/snapshot_format.h"
#include "common/thread_pool.h"
#include "extraction/extraction_cache.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "obs/metrics.h"

namespace iejoin {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool / ParallelMap primitives
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitTaskReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int64_t>> futures;
  for (int64_t i = 0; i < 100; ++i) {
    futures.push_back(pool.SubmitTask([i]() { return i * i; }));
  }
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int64_t> ran{0};
  std::vector<std::future<int64_t>> futures;
  {
    ThreadPool pool(2);
    for (int64_t i = 0; i < 64; ++i) {
      futures.push_back(pool.SubmitTask([&ran, i]() {
        ran.fetch_add(1);
        return i;
      }));
    }
  }  // Destructor joins only after every queued task ran.
  EXPECT_EQ(ran.load(), 64);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i);
  }
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(3);
  const std::vector<int64_t> mapped =
      ParallelMap(&pool, 50, [](int64_t i) { return i * 3; });
  ASSERT_EQ(mapped.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(mapped[static_cast<size_t>(i)], i * 3);
  }
}

TEST(ThreadPoolTest, ParallelMapRunsInlineWithoutPool) {
  const std::vector<int64_t> mapped =
      ParallelMap(nullptr, 5, [](int64_t i) { return i + 1; });
  EXPECT_EQ(mapped, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

// Shutdown-ordering regression: a Submit racing the destructor's
// shutting_down_ flip must either be accepted (and drained before join) or
// refused with `false` — never enqueued-but-lost and never a condvar race.
// Nested submits come from worker threads, so the pool object is still
// alive while its destructor runs; TSan watches the handoff.
TEST(ThreadPoolTest, SubmitRacingShutdownIsRefusedNotLost) {
  std::atomic<int64_t> nested_ran{0};
  std::atomic<int64_t> nested_accepted{0};
  std::atomic<int64_t> nested_refused{0};
  {
    ThreadPool pool(2);
    std::atomic<bool> release{false};
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(pool.Submit([&]() {
        while (!release.load()) std::this_thread::yield();
        if (pool.Submit([&]() { nested_ran.fetch_add(1); })) {
          nested_accepted.fetch_add(1);
        } else {
          nested_refused.fetch_add(1);
        }
      }));
    }
    release.store(true);
    // Destructor runs here, racing the nested submits from the workers.
  }
  EXPECT_EQ(nested_accepted.load() + nested_refused.load(), 16);
  EXPECT_EQ(nested_ran.load(), nested_accepted.load())
      << "accepted tasks must drain before the workers join";
}

TEST(ThreadPoolTest, SubmitTaskFuturesSatisfiedAcrossShutdown) {
  std::mutex mu;
  std::vector<std::future<int64_t>> futures;
  {
    ThreadPool pool(2);
    std::atomic<bool> release{false};
    for (int64_t i = 0; i < 16; ++i) {
      ASSERT_TRUE(pool.Submit([&, i]() {
        while (!release.load()) std::this_thread::yield();
        // Refused packaged tasks run inline, so the future is always
        // satisfied no matter where this lands relative to shutdown.
        auto future = pool.SubmitTask([i]() { return i; });
        std::lock_guard<std::mutex> lock(mu);
        futures.push_back(std::move(future));
      }));
    }
    release.store(true);
  }
  ASSERT_EQ(futures.size(), 16u);
  int64_t sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(sum, 16 * 15 / 2);
}

// ---------------------------------------------------------------------------
// Bounded ExtractionCache: LRU replacement as a unit
// ---------------------------------------------------------------------------

ExtractionCache::Key CacheKey(int32_t side, DocId doc, double theta = 0.4) {
  ExtractionCache::Key key;
  key.side = side;
  key.doc = doc;
  key.theta = theta;
  return key;
}

ExtractionBatch CacheBatch(size_t tuples, TokenId value) {
  ExtractionBatch batch;
  for (size_t i = 0; i < tuples; ++i) {
    ExtractedTuple t;
    t.join_value = value;
    t.second_value = static_cast<TokenId>(i);
    t.ground_truth_good = true;
    t.similarity = 0.5;
    batch.push_back(t);
  }
  return batch;
}

TEST(ExtractionCacheLruTest, EvictsLeastRecentlyUsedAtByteBudget) {
  const int64_t one = ExtractionCache::CostOf(CacheBatch(1, 7));
  ExtractionCache cache(3 * one);
  for (DocId doc = 0; doc < 3; ++doc) {
    const auto outcome = cache.Insert(CacheKey(0, doc), CacheBatch(1, 7));
    EXPECT_EQ(outcome.evicted[0] + outcome.evicted[1], 0);
  }
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.bytes(), 3 * one);

  const auto outcome = cache.Insert(CacheKey(0, 3), CacheBatch(1, 7));
  EXPECT_EQ(outcome.evicted[0], 1) << "oldest entry (doc 0) must go";
  EXPECT_FALSE(cache.Contains(CacheKey(0, 0)));
  for (DocId doc = 1; doc <= 3; ++doc) {
    EXPECT_TRUE(cache.Contains(CacheKey(0, doc))) << "doc " << doc;
  }
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_LE(cache.bytes(), cache.max_bytes());
}

TEST(ExtractionCacheLruTest, LookupHitRefreshesRecency) {
  const int64_t one = ExtractionCache::CostOf(CacheBatch(1, 7));
  ExtractionCache cache(3 * one);
  for (DocId doc = 0; doc < 3; ++doc) {
    (void)cache.Insert(CacheKey(0, doc), CacheBatch(1, 7));
  }
  ASSERT_TRUE(cache.Lookup(CacheKey(0, 0)).has_value());  // doc 0 → MRU
  (void)cache.Insert(CacheKey(0, 3), CacheBatch(1, 7));
  EXPECT_TRUE(cache.Contains(CacheKey(0, 0))) << "refreshed entry survives";
  EXPECT_FALSE(cache.Contains(CacheKey(0, 1))) << "doc 1 became the LRU";
}

TEST(ExtractionCacheLruTest, NewestEntrySurvivesEvenAloneOverBudget) {
  ExtractionCache cache(1);  // absurdly small budget
  (void)cache.Insert(CacheKey(0, 0), CacheBatch(4, 7));
  EXPECT_EQ(cache.size(), 1) << "the entry just inserted is never evicted";
  const auto outcome = cache.Insert(CacheKey(1, 1), CacheBatch(4, 7));
  EXPECT_EQ(outcome.evicted[0], 1);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_TRUE(cache.Contains(CacheKey(1, 1)));
}

TEST(ExtractionCacheLruTest, EvictionsIndexedByEvictedSide) {
  const int64_t one = ExtractionCache::CostOf(CacheBatch(1, 7));
  ExtractionCache cache(2 * one);
  (void)cache.Insert(CacheKey(1, 0), CacheBatch(1, 7));  // side 1 oldest
  (void)cache.Insert(CacheKey(0, 1), CacheBatch(1, 7));
  const auto outcome = cache.Insert(CacheKey(0, 2), CacheBatch(1, 7));
  EXPECT_EQ(outcome.evicted[1], 1) << "charge lands on the evicted side";
  EXPECT_EQ(outcome.evicted[0], 0);
}

TEST(ExtractionCacheLruTest, UnboundedCacheNeverEvicts) {
  ExtractionCache cache;  // max_bytes == 0
  for (DocId doc = 0; doc < 200; ++doc) {
    const auto outcome = cache.Insert(CacheKey(0, doc), CacheBatch(3, 7));
    EXPECT_EQ(outcome.evicted[0] + outcome.evicted[1], 0);
  }
  EXPECT_EQ(cache.size(), 200);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(ExtractionCacheLruTest, SnapshotRestoreReproducesReplacementState) {
  const int64_t one = ExtractionCache::CostOf(CacheBatch(1, 7));
  ExtractionCache cache(3 * one);
  for (DocId doc = 0; doc < 3; ++doc) {
    (void)cache.Insert(CacheKey(0, doc), CacheBatch(1, static_cast<TokenId>(doc)));
  }
  ASSERT_TRUE(cache.Lookup(CacheKey(0, 0)).has_value());  // order: 1, 2, 0

  const std::vector<ExtractionCache::Entry> entries = cache.SnapshotEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().key.doc, 1) << "snapshot is LRU→MRU";
  EXPECT_EQ(entries.back().key.doc, 0);

  ExtractionCache restored(3 * one);
  restored.RestoreEntries(entries);
  EXPECT_EQ(restored.size(), cache.size());
  EXPECT_EQ(restored.bytes(), cache.bytes());

  // Same replacement state: the next insert evicts the same victim.
  (void)cache.Insert(CacheKey(0, 9), CacheBatch(1, 9));
  (void)restored.Insert(CacheKey(0, 9), CacheBatch(1, 9));
  for (DocId doc : {DocId(0), DocId(1), DocId(2), DocId(9)}) {
    EXPECT_EQ(restored.Contains(CacheKey(0, doc)),
              cache.Contains(CacheKey(0, doc)))
        << "doc " << doc;
  }
  EXPECT_FALSE(restored.Contains(CacheKey(0, 1)));
}

// ---------------------------------------------------------------------------
// Fingerprints: hexfloat keeps doubles bit-exact, so string equality is
// bit-identity over everything a run produces (mirrors the crash suite).
// ---------------------------------------------------------------------------

void AppendPoint(const TrajectoryPoint& p, std::ostringstream* out) {
  *out << p.docs_retrieved1 << ',' << p.docs_retrieved2 << ','
       << p.docs_processed1 << ',' << p.docs_processed2 << ',' << p.queries1
       << ',' << p.queries2 << ',' << p.extracted1 << ',' << p.extracted2
       << ',' << p.docs_with_extraction1 << ',' << p.docs_with_extraction2
       << ',' << p.docs_dropped1 << ',' << p.docs_dropped2 << ','
       << p.queries_dropped1 << ',' << p.queries_dropped2 << ','
       << p.ops_retried1 << ',' << p.ops_retried2 << ',' << p.ops_failed1
       << ',' << p.ops_failed2 << ',' << p.breaker_trips1 << ','
       << p.breaker_trips2 << ',' << p.hedges1 << ',' << p.hedges2 << ','
       << p.good_join_tuples << ',' << p.bad_join_tuples << ',' << p.seconds
       << ';';
}

bool IsWallClock(const std::string& name) {
  // `wall.`-prefixed metrics are the documented nondeterminism carve-out
  // (live thread-pool introspection); they never participate in bit-identity.
  return name.compare(0, 5, "wall.") == 0;
}

void AppendMetrics(const obs::MetricsSnapshot& m, std::ostringstream* out) {
  *out << "|counters:";
  for (const auto& [name, value] : m.counters) {
    if (IsWallClock(name)) continue;
    *out << name << '=' << value << ';';
  }
  *out << "|gauges:";
  for (const auto& [name, value] : m.gauges) {
    if (IsWallClock(name)) continue;
    *out << name << '=' << value << ';';
  }
  *out << "|histograms:";
  for (const auto& [name, h] : m.histograms) {
    *out << name << '=';
    for (double b : h.upper_bounds) *out << b << ',';
    for (int64_t c : h.bucket_counts) *out << c << ',';
    *out << h.count << ',' << h.sum << ';';
  }
}

std::string Fingerprint(const JoinExecutionResult& result,
                        const obs::MetricsSnapshot* metrics) {
  std::ostringstream out;
  out << std::hexfloat;
  out << "final:";
  AppendPoint(result.final_point, &out);
  out << "|traj:" << result.trajectory.size() << ';';
  for (const auto& p : result.trajectory) AppendPoint(p, &out);
  out << "|state:" << result.state.good_join_tuples() << ','
      << result.state.bad_join_tuples() << ','
      << result.state.extracted_occurrences(0) << ','
      << result.state.extracted_occurrences(1) << ','
      << result.state.good_occurrences(0) << ','
      << result.state.good_occurrences(1) << ','
      << result.state.output_truncated();
  out << "|output:" << result.state.output().size() << ';';
  for (const auto& t : result.state.output()) {
    out << t.join_value << ',' << t.second1 << ',' << t.second2 << ','
        << t.is_good << ',' << t.confidence << ';';
  }
  out << "|flags:" << result.exhausted << result.requirement_met
      << result.degraded << result.deadline_exceeded << ','
      << result.fault_seconds;
  if (metrics != nullptr) AppendMetrics(*metrics, &out);
  return out.str();
}

/// Captures every delivered checkpoint as encoded snapshot bytes, so two
/// runs' checkpoint streams can be compared image by image.
class ImageSink : public CheckpointSink {
 public:
  Status Write(const ExecutorCheckpoint& checkpoint) override {
    std::vector<ckpt::SnapshotSection> sections;
    ckpt::AppendExecutorSections(checkpoint, &sections);
    images.push_back(ckpt::EncodeSnapshot(sections));
    return Status::Ok();
  }
  std::vector<std::string> images;
};

// ---------------------------------------------------------------------------
// Fixture: one small workbench shared by every determinism case. Pools are
// attached per run through JoinExecutionOptions, so a single bench serves
// every thread count.
// ---------------------------------------------------------------------------

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinPlanSpec PlanFor(JoinAlgorithmKind kind) {
    JoinPlanSpec plan;
    plan.algorithm = kind;
    plan.theta1 = plan.theta2 = 0.4;
    plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
    return plan;
  }

  static fault::FaultPlan TestFaults() {
    fault::FaultPlan plan;
    plan.set_error_rate(fault::FaultOp::kExtract, 0.05);
    plan.set_timeout(fault::FaultOp::kQuery, 0.02, 1.5);
    return plan;
  }

  struct RunCapture {
    std::string fingerprint;
    std::vector<std::string> checkpoint_images;
  };

  /// Runs the plan with the given pool (null = sequential) and returns the
  /// full bit-identity capture: result + metrics fingerprint and the byte
  /// images of every emitted checkpoint.
  static RunCapture Run(const JoinPlanSpec& plan, const fault::FaultPlan* faults,
                        ThreadPool* pool) {
    ImageSink sink;
    obs::MetricsRegistry registry;
    JoinExecutionOptions options;
    options.max_output_tuples = 20000;
    options.fault_plan = faults;
    options.checkpoint_sink = &sink;
    options.checkpoint_every_docs = 32;
    options.metrics = &registry;
    options.pool = pool;
    auto result = bench().RunPlan(plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    RunCapture capture;
    if (result.ok()) {
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      capture.fingerprint = Fingerprint(*result, &snapshot);
      capture.checkpoint_images = std::move(sink.images);
    }
    return capture;
  }

  /// threads=0 is the sequential legacy path; every parallel run must match
  /// it byte for byte.
  static void RunMatrix(JoinAlgorithmKind kind, const fault::FaultPlan* faults) {
    const JoinPlanSpec plan = PlanFor(kind);
    const RunCapture expected = Run(plan, faults, nullptr);
    ASSERT_FALSE(expected.fingerprint.empty());
    ASSERT_GE(expected.checkpoint_images.size(), 1u)
        << "scenario too small to exercise checkpointing";

    for (int threads : {1, 2, 8}) {
      ThreadPool pool(threads);
      const RunCapture parallel = Run(plan, faults, &pool);
      EXPECT_EQ(parallel.fingerprint, expected.fingerprint)
          << JoinAlgorithmName(kind) << " diverged at threads=" << threads;
      ASSERT_EQ(parallel.checkpoint_images.size(),
                expected.checkpoint_images.size())
          << JoinAlgorithmName(kind) << " threads=" << threads;
      for (size_t i = 0; i < expected.checkpoint_images.size(); ++i) {
        EXPECT_EQ(parallel.checkpoint_images[i], expected.checkpoint_images[i])
            << JoinAlgorithmName(kind) << " checkpoint " << i
            << " diverged at threads=" << threads;
      }
    }
  }

 private:
  static const Workbench* bench_;
};

const Workbench* ParallelDeterminismTest::bench_ = nullptr;

TEST_F(ParallelDeterminismTest, IdjnMatchesSequential) {
  RunMatrix(JoinAlgorithmKind::kIndependent, nullptr);
}

TEST_F(ParallelDeterminismTest, OijnMatchesSequential) {
  RunMatrix(JoinAlgorithmKind::kOuterInner, nullptr);
}

TEST_F(ParallelDeterminismTest, ZgjnMatchesSequential) {
  RunMatrix(JoinAlgorithmKind::kZigZag, nullptr);
}

TEST_F(ParallelDeterminismTest, IdjnMatchesSequentialUnderFaults) {
  const fault::FaultPlan faults = TestFaults();
  RunMatrix(JoinAlgorithmKind::kIndependent, &faults);
}

TEST_F(ParallelDeterminismTest, OijnMatchesSequentialUnderFaults) {
  const fault::FaultPlan faults = TestFaults();
  RunMatrix(JoinAlgorithmKind::kOuterInner, &faults);
}

TEST_F(ParallelDeterminismTest, ZgjnMatchesSequentialUnderFaults) {
  const fault::FaultPlan faults = TestFaults();
  RunMatrix(JoinAlgorithmKind::kZigZag, &faults);
}

// ---------------------------------------------------------------------------
// Extraction cache: results cache-invariant, counters thread-invariant,
// θ change invalidates by construction (new key).
// ---------------------------------------------------------------------------

class ExtractionCacheTest : public ParallelDeterminismTest {
 protected:
  struct CachedRun {
    std::string result_fingerprint;  // result only — no metrics
    int64_t hits = 0;
    int64_t misses = 0;
  };

  static CachedRun RunWithCache(const JoinPlanSpec& plan, ExtractionCache* cache,
                                ThreadPool* pool) {
    obs::MetricsRegistry registry;
    JoinExecutionOptions options;
    options.max_output_tuples = 20000;
    options.metrics = &registry;
    options.pool = pool;
    options.extraction_cache = cache;
    auto result = bench().RunPlan(plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    CachedRun run;
    if (result.ok()) {
      run.result_fingerprint = Fingerprint(*result, nullptr);
      const obs::MetricsSnapshot snapshot = registry.Snapshot();
      for (const auto& [name, value] : snapshot.counters) {
        if (name == "side1.cache_hits" || name == "side2.cache_hits") {
          run.hits += value;
        } else if (name == "side1.cache_misses" ||
                   name == "side2.cache_misses") {
          run.misses += value;
        }
      }
    }
    return run;
  }
};

TEST_F(ExtractionCacheTest, RepeatRunsHitAndResultsAreCacheInvariant) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const std::string uncached =
      RunWithCache(plan, nullptr, nullptr).result_fingerprint;

  ExtractionCache cache;
  const CachedRun first = RunWithCache(plan, &cache, nullptr);
  EXPECT_EQ(first.hits, 0) << "each doc is extracted at most once per run";
  EXPECT_GT(first.misses, 0);
  EXPECT_GT(cache.size(), 0);
  // The simulated execution is cache-invariant: same bytes with and without.
  EXPECT_EQ(first.result_fingerprint, uncached);

  const CachedRun second = RunWithCache(plan, &cache, nullptr);
  EXPECT_GT(second.hits, 0) << "second run over the same docs must hit";
  EXPECT_EQ(second.hits, first.misses)
      << "every insert from run 1 is re-read in run 2";
  EXPECT_EQ(second.misses, 0);
  EXPECT_EQ(second.result_fingerprint, uncached);
}

TEST_F(ExtractionCacheTest, ThetaChangeMissesThenHitsAtThatTheta) {
  ExtractionCache cache;
  JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const CachedRun at_04 = RunWithCache(plan, &cache, nullptr);
  EXPECT_GT(at_04.misses, 0);

  // θ is part of the cache key, so changing it invalidates by construction.
  plan.theta1 = plan.theta2 = 0.6;
  const CachedRun at_06 = RunWithCache(plan, &cache, nullptr);
  EXPECT_EQ(at_06.hits, 0) << "entries at θ=0.4 must not serve θ=0.6";
  EXPECT_GT(at_06.misses, 0);

  const CachedRun at_06_again = RunWithCache(plan, &cache, nullptr);
  EXPECT_EQ(at_06_again.hits, at_06.misses);
  EXPECT_EQ(at_06_again.misses, 0);
}

TEST_F(ExtractionCacheTest, BoundedCacheEvictsWithoutChangingResults) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const std::string uncached =
      RunWithCache(plan, nullptr, nullptr).result_fingerprint;

  const auto run_bounded = [&](ThreadPool* pool, ExtractionCache* cache,
                               obs::MetricsRegistry* registry) {
    JoinExecutionOptions options;
    options.max_output_tuples = 20000;
    options.metrics = registry;
    options.pool = pool;
    options.extraction_cache = cache;
    auto result = bench().RunPlan(plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? Fingerprint(*result, nullptr) : std::string();
  };
  const auto counter = [](const obs::MetricsRegistry& registry,
                          const std::string& name) {
    const auto counters = registry.Snapshot().counters;
    const auto it = counters.find(name);
    return it == counters.end() ? int64_t{0} : it->second;
  };

  ExtractionCache small(16 * 1024);
  obs::MetricsRegistry registry;
  EXPECT_EQ(run_bounded(nullptr, &small, &registry), uncached)
      << "eviction churn must not change simulated results";
  EXPECT_GT(small.evictions(), 0) << "budget chosen to force evictions";
  EXPECT_LE(small.bytes(), small.max_bytes());
  EXPECT_EQ(counter(registry, "side1.cache_evictions") +
                counter(registry, "side2.cache_evictions"),
            small.evictions())
      << "driver charges every eviction to the evicted entry's side";

  // Replacement decisions happen on the driver in retrieval order, so the
  // eviction series is thread-count-invariant too.
  ThreadPool pool(4);
  ExtractionCache small_parallel(16 * 1024);
  obs::MetricsRegistry parallel_registry;
  EXPECT_EQ(run_bounded(&pool, &small_parallel, &parallel_registry), uncached);
  EXPECT_EQ(small_parallel.evictions(), small.evictions());
  EXPECT_EQ(counter(parallel_registry, "side1.cache_evictions"),
            counter(registry, "side1.cache_evictions"));
  EXPECT_EQ(counter(parallel_registry, "side2.cache_evictions"),
            counter(registry, "side2.cache_evictions"));
}

TEST_F(ExtractionCacheTest, HitCountersAreThreadCountInvariant) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kOuterInner);

  ExtractionCache sequential_cache;
  const CachedRun seq1 = RunWithCache(plan, &sequential_cache, nullptr);
  const CachedRun seq2 = RunWithCache(plan, &sequential_cache, nullptr);

  ThreadPool pool(4);
  ExtractionCache parallel_cache;
  const CachedRun par1 = RunWithCache(plan, &parallel_cache, &pool);
  const CachedRun par2 = RunWithCache(plan, &parallel_cache, &pool);

  EXPECT_EQ(par1.hits, seq1.hits);
  EXPECT_EQ(par1.misses, seq1.misses);
  EXPECT_EQ(par2.hits, seq2.hits);
  EXPECT_EQ(par2.misses, seq2.misses);
  EXPECT_EQ(parallel_cache.size(), sequential_cache.size());
  EXPECT_EQ(par1.result_fingerprint, seq1.result_fingerprint);
  EXPECT_EQ(par2.result_fingerprint, seq2.result_fingerprint);
}

// ---------------------------------------------------------------------------
// Optimizer plan scoring fans out over the same pool; the ranking must be
// identical to the sequential one (enumeration order + stable sort).
// ---------------------------------------------------------------------------

TEST_F(ParallelDeterminismTest, OptimizerRankingIsThreadCountInvariant) {
  auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  QualityRequirement req;
  req.min_good_tuples = 50;
  req.max_bad_tuples = 100000;

  const auto describe = [&req](const OptimizerInputs& in) {
    const QualityAwareOptimizer optimizer(in, PlanEnumerationOptions());
    std::ostringstream out;
    out << std::hexfloat;
    for (const PlanChoice& c : optimizer.RankPlans(req)) {
      out << c.plan.Describe() << ',' << c.feasible << ','
          << c.estimate.expected_good << ',' << c.estimate.expected_bad << ','
          << c.estimate.seconds << ';';
    }
    return out.str();
  };

  OptimizerInputs sequential = *inputs;
  sequential.pool = nullptr;
  const std::string expected = describe(sequential);
  for (int threads : {2, 8}) {
    ThreadPool pool(threads);
    OptimizerInputs parallel = *inputs;
    parallel.pool = &pool;
    EXPECT_EQ(describe(parallel), expected) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace iejoin
