// Randomized stress tests: generate scenarios from randomly drawn (valid)
// specifications and assert the structural invariants hold for every draw,
// then push a couple of executions through the most extreme shapes.

#include <gtest/gtest.h>

#include "common/random.h"
#include "harness/workbench.h"
#include "textdb/corpus_generator.h"

namespace iejoin {
namespace {

ScenarioSpec RandomSpec(uint64_t seed) {
  Rng rng(seed);
  ScenarioSpec spec;
  spec.seed = seed;
  for (RelationSpec* rel : {&spec.relation1, &spec.relation2}) {
    rel->num_documents = rng.UniformInt(40, 1200);
    rel->good_zone_fraction = 0.05 + 0.4 * rng.NextDouble();
    rel->mention_zone_fraction =
        rel->good_zone_fraction + (1.0 - rel->good_zone_fraction) * rng.NextDouble();
    rel->good_freq_exponent = 1.1 + 1.5 * rng.NextDouble();
    rel->bad_freq_exponent = 1.1 + 1.5 * rng.NextDouble();
    rel->max_good_frequency = rng.UniformInt(2, 40);
    rel->max_bad_frequency = rng.UniformInt(2, 80);
    rel->filler_sentences_per_doc = static_cast<int32_t>(rng.UniformInt(1, 6));
    rel->words_per_filler_sentence = static_cast<int32_t>(rng.UniformInt(3, 12));
    rel->filler_entity_probability = 0.3 * rng.NextDouble();
    rel->context_words_per_mention = static_cast<int32_t>(rng.UniformInt(3, 12));
    rel->good_affinity_lo = 0.3 + 0.3 * rng.NextDouble();
    rel->good_affinity_hi = rel->good_affinity_lo +
                            (1.0 - rel->good_affinity_lo) * rng.NextDouble();
    rel->bad_affinity_lo = 0.05 + 0.2 * rng.NextDouble();
    rel->bad_affinity_hi =
        rel->bad_affinity_lo + 0.5 * (1.0 - rel->bad_affinity_lo) * rng.NextDouble();
    rel->pattern_vocab_size = rng.UniformInt(20, 200);
    rel->noise_vocab_size = rng.UniformInt(100, 2000);
    rel->second_value_pool = rng.UniformInt(10, 400);
  }
  spec.relation2.second_entity = TokenType::kPerson;
  spec.num_shared_gg = rng.UniformInt(1, 80);
  spec.num_shared_gb = rng.UniformInt(0, 40);
  spec.num_shared_bg = rng.UniformInt(0, 40);
  spec.num_shared_bb = rng.UniformInt(0, 120);
  spec.num_exclusive_good1 = rng.UniformInt(0, 100);
  spec.num_exclusive_bad1 = rng.UniformInt(0, 100);
  spec.num_exclusive_good2 = rng.UniformInt(0, 100);
  spec.num_exclusive_bad2 = rng.UniformInt(0, 100);
  spec.num_outlier_values = rng.UniformInt(0, 4);
  spec.outlier_frequency = rng.UniformInt(1, 60);
  spec.correlate_shared_good_frequencies = rng.Bernoulli(0.5);
  return spec;
}

class GeneratorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorFuzzTest, InvariantsHoldForRandomSpecs) {
  const ScenarioSpec spec = RandomSpec(GetParam());
  CorpusGenerator generator(spec);
  auto scenario = generator.Generate();
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();

  for (const auto* corpus : {scenario->corpus1.get(), scenario->corpus2.get()}) {
    const RelationGroundTruth& truth = corpus->ground_truth();
    // Document partition is complete.
    EXPECT_EQ(static_cast<int64_t>(truth.good_docs.size() + truth.bad_docs.size() +
                                   truth.empty_docs.size()),
              corpus->size());
    // Frequencies and totals are consistent.
    int64_t good = 0;
    int64_t bad = 0;
    for (const auto& [value, vf] : truth.value_frequencies) {
      EXPECT_GE(vf.good, 0);
      EXPECT_GE(vf.bad, 0);
      good += vf.good;
      bad += vf.bad;
    }
    EXPECT_EQ(good, truth.total_good_occurrences);
    EXPECT_EQ(bad, truth.total_bad_occurrences);
    // Every token id is valid; document ids are positional.
    for (const Document& doc : corpus->documents()) {
      for (TokenId t : doc.tokens) {
        EXPECT_LT(t, corpus->vocabulary().size());
      }
    }
  }

  // Overlap classes realized with the requested polarity.
  const auto& t1 = scenario->corpus1->ground_truth().value_frequencies;
  for (TokenId v : scenario->values_gg) {
    EXPECT_GT(t1.at(v).good, 0);
  }
}

TEST_P(GeneratorFuzzTest, ExtractionRunsCleanlyOnRandomCorpora) {
  ScenarioSpec spec = RandomSpec(GetParam() + 1000);
  // An extractor needs at least a handful of good values to characterize.
  spec.num_shared_gg = std::max<int64_t>(spec.num_shared_gg, 10);
  CorpusGenerator generator(spec);
  auto scenario = generator.Generate();
  ASSERT_TRUE(scenario.ok());
  SnowballConfig config;
  auto extractor = SnowballExtractor::Train(*scenario->corpus1, config);
  ASSERT_TRUE(extractor.ok());
  int64_t extracted = 0;
  for (const Document& doc : scenario->corpus1->documents()) {
    extracted += static_cast<int64_t>((*extractor)->Process(doc).size());
  }
  // The permissive pass over the whole corpus never exceeds the planted
  // mention count and finds everything at theta = 0.
  const auto permissive = (*extractor)->WithTheta(0.0);
  int64_t planted = 0;
  int64_t found = 0;
  for (const Document& doc : scenario->corpus1->documents()) {
    planted += static_cast<int64_t>(doc.mentions.size());
    found += static_cast<int64_t>(permissive->Process(doc).size());
  }
  EXPECT_EQ(found, planted);
  EXPECT_LE(extracted, planted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorFuzzTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace iejoin
