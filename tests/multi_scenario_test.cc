// Tests for the K-relation scenario generator, pairwise overlap
// computation, and the multi-relation workbench.

#include <gtest/gtest.h>

#include "harness/multi_workbench.h"
#include "textdb/corpus_generator.h"
#include "textdb/multi_corpus_generator.h"

namespace iejoin {
namespace {

MultiScenarioSpec SmallTriSpec() {
  MultiScenarioSpec spec = MultiScenarioSpec::ThreeRelationPaperLike();
  for (RelationSpec& rel : spec.relations) {
    rel.num_documents = 700;
    rel.noise_vocab_size = 600;
    rel.second_value_pool = 150;
    rel.max_good_frequency = 20;
    rel.max_bad_frequency = 40;
  }
  spec.value_universe = 500;
  spec.num_outlier_values = 2;
  spec.outlier_frequency = 40;
  return spec;
}

class MultiScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MultiCorpusGenerator generator(SmallTriSpec());
    auto result = generator.Generate();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    scenario_ = new MultiScenario(std::move(result.value()));
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static const MultiScenario& scenario() { return *scenario_; }
  static MultiScenario* scenario_;
};

MultiScenario* MultiScenarioTest::scenario_ = nullptr;

TEST_F(MultiScenarioTest, BuildsOneCorpusPerRelation) {
  ASSERT_EQ(scenario().corpora.size(), 3u);
  for (const auto& corpus : scenario().corpora) {
    EXPECT_EQ(corpus->size(), 700);
    EXPECT_EQ(corpus->shared_vocabulary().get(), scenario().vocabulary.get());
  }
  EXPECT_EQ(scenario().corpora[2]->ground_truth().relation_name, "Mergers");
}

TEST_F(MultiScenarioTest, RolesMatchRealizedGroundTruth) {
  for (size_t r = 0; r < 3; ++r) {
    const auto& freqs = scenario().corpora[r]->ground_truth().value_frequencies;
    for (size_t v = 0; v < scenario().values.size(); ++v) {
      const TokenId value = scenario().values[v];
      const ValueRole role = scenario().roles[r][v];
      const auto it = freqs.find(value);
      switch (role) {
        case ValueRole::kAbsent:
          EXPECT_EQ(it, freqs.end());
          break;
        case ValueRole::kGood:
          ASSERT_NE(it, freqs.end());
          EXPECT_GT(it->second.good, 0);
          EXPECT_EQ(it->second.bad, 0);
          break;
        case ValueRole::kBad:
          ASSERT_NE(it, freqs.end());
          EXPECT_EQ(it->second.good, 0);
          EXPECT_GT(it->second.bad, 0);
          break;
      }
    }
  }
}

TEST_F(MultiScenarioTest, OutliersAreBadEverywhere) {
  const size_t n = scenario().values.size();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(scenario().roles[r][n - 1], ValueRole::kBad);
    EXPECT_EQ(scenario().roles[r][n - 2], ValueRole::kBad);
  }
}

TEST_F(MultiScenarioTest, OverlapMatchesRoleMatrix) {
  // ComputeOverlapFromGroundTruth must agree with a recount over the role
  // matrix for every pair.
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      OverlapCounts expected;
      for (size_t v = 0; v < scenario().values.size(); ++v) {
        const ValueRole ra = scenario().roles[a][v];
        const ValueRole rb = scenario().roles[b][v];
        if (ra == ValueRole::kGood && rb == ValueRole::kGood) ++expected.num_agg;
        if (ra == ValueRole::kGood && rb == ValueRole::kBad) ++expected.num_agb;
        if (ra == ValueRole::kBad && rb == ValueRole::kGood) ++expected.num_abg;
        if (ra == ValueRole::kBad && rb == ValueRole::kBad) ++expected.num_abb;
      }
      const OverlapCounts got = ComputeOverlapFromGroundTruth(
          *scenario().corpora[a], *scenario().corpora[b]);
      EXPECT_EQ(got.num_agg, expected.num_agg) << a << "," << b;
      EXPECT_EQ(got.num_agb, expected.num_agb);
      EXPECT_EQ(got.num_abg, expected.num_abg);
      EXPECT_EQ(got.num_abb, expected.num_abb);
    }
  }
}

TEST_F(MultiScenarioTest, OverlapMatchesTwoRelationScenarioSets) {
  // On the classic two-relation generator, the ground-truth overlap
  // computation reproduces the explicitly planted class sets.
  CorpusGenerator generator(ScenarioSpec::Small());
  auto scenario2 = generator.Generate();
  ASSERT_TRUE(scenario2.ok());
  const OverlapCounts overlap =
      ComputeOverlapFromGroundTruth(*scenario2->corpus1, *scenario2->corpus2);
  EXPECT_EQ(overlap.num_agg, static_cast<int64_t>(scenario2->values_gg.size()));
  EXPECT_EQ(overlap.num_agb, static_cast<int64_t>(scenario2->values_gb.size()));
  EXPECT_EQ(overlap.num_abg, static_cast<int64_t>(scenario2->values_bg.size()));
  EXPECT_EQ(overlap.num_abb, static_cast<int64_t>(scenario2->values_bb.size()));
}

TEST(MultiGeneratorTest, Deterministic) {
  MultiCorpusGenerator g1(SmallTriSpec());
  MultiCorpusGenerator g2(SmallTriSpec());
  auto s1 = g1.Generate();
  auto s2 = g2.Generate();
  ASSERT_TRUE(s1.ok() && s2.ok());
  for (size_t r = 0; r < 3; ++r) {
    for (int64_t d = 0; d < s1->corpora[r]->size(); ++d) {
      ASSERT_EQ(s1->corpora[r]->document(static_cast<DocId>(d)).tokens,
                s2->corpora[r]->document(static_cast<DocId>(d)).tokens);
    }
  }
}

TEST(MultiGeneratorTest, ValidatesSpecs) {
  MultiScenarioSpec spec = SmallTriSpec();
  spec.relations.resize(1);
  spec.roles.resize(1);
  EXPECT_FALSE(MultiCorpusGenerator(spec).Generate().ok());

  spec = SmallTriSpec();
  spec.roles.pop_back();
  EXPECT_FALSE(MultiCorpusGenerator(spec).Generate().ok());

  spec = SmallTriSpec();
  spec.roles[0].good = 0.7;
  spec.roles[0].bad = 0.7;  // sums over 1
  EXPECT_FALSE(MultiCorpusGenerator(spec).Generate().ok());

  spec = SmallTriSpec();
  spec.relations[1].join_entity = TokenType::kLocation;
  EXPECT_FALSE(MultiCorpusGenerator(spec).Generate().ok());

  spec = SmallTriSpec();
  spec.value_universe = 0;
  EXPECT_FALSE(MultiCorpusGenerator(spec).Generate().ok());
}

TEST(MultiWorkbenchTest, PairwiseTaskExecutesAndDelivers) {
  MultiWorkbenchConfig config;
  config.spec = SmallTriSpec();
  auto bench = MultiWorkbench::Create(config);
  ASSERT_TRUE(bench.ok()) << bench.status().ToString();
  ASSERT_EQ((*bench)->num_relations(), 3u);

  // Run the optimizer on the HQ ⋈ MG pair and verify delivery.
  auto inputs = (*bench)->PairOptimizerInputs(0, 2, /*include_zgjn_pgfs=*/false);
  ASSERT_TRUE(inputs.ok()) << inputs.status().ToString();
  PlanEnumerationOptions enum_options;
  enum_options.include_zgjn = false;
  const QualityAwareOptimizer optimizer(*inputs, enum_options);
  QualityRequirement req;
  req.min_good_tuples = 5;
  req.max_bad_tuples = 100000;
  auto choice = optimizer.ChoosePlan(req);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  auto executor = CreateJoinExecutor(choice->plan, (*bench)->PairResources(0, 2));
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement = req;
  auto result = (*executor)->Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->requirement_met) << choice->plan.Describe();
}

TEST(MultiWorkbenchTest, ZgjnSeedsAreSharedGoodValues) {
  MultiWorkbenchConfig config;
  config.spec = SmallTriSpec();
  auto bench = MultiWorkbench::Create(config);
  ASSERT_TRUE(bench.ok());
  const auto seeds = (*bench)->PairZgjnSeeds(0, 1, 5);
  EXPECT_FALSE(seeds.empty());
  const auto& f0 = (*bench)->database(0).corpus().ground_truth().value_frequencies;
  const auto& f1 = (*bench)->database(1).corpus().ground_truth().value_frequencies;
  for (TokenId v : seeds) {
    EXPECT_GT(f0.at(v).good, 0);
    EXPECT_GT(f1.at(v).good, 0);
  }
}

}  // namespace
}  // namespace iejoin
