// Tests for the checkpoint snapshot container and codecs: buffer encoding,
// container round-trips, the corrupt-snapshot rejection suite (mirroring
// corpus_io_test.cc), executor/adaptive checkpoint codec round-trips, and
// the CheckpointManager's latest-valid-snapshot fallback.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/checkpoint_manager.h"
#include "checkpoint/join_checkpoint.h"
#include "checkpoint/snapshot_format.h"
#include "extraction/extracted_tuple.h"
#include "join/executor_checkpoint.h"
#include "optimizer/adaptive_checkpoint.h"

namespace iejoin {
namespace {

using ckpt::BufDecoder;
using ckpt::BufEncoder;
using ckpt::SnapshotSection;

// --------------------------------------------------------------------------
// Buffer encoding
// --------------------------------------------------------------------------

TEST(BufCodecTest, RoundTripsScalars) {
  BufEncoder enc;
  enc.PutU8(0xab);
  enc.PutBool(true);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefull);
  enc.PutI64(-42);
  enc.PutDouble(3.14159265358979);
  enc.PutString("hello");
  enc.PutBits({true, false, true, true, false, false, true, false, true});
  const std::string buf = enc.buffer();

  BufDecoder dec(buf);
  uint8_t u8 = 0;
  bool b = false;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  std::string s;
  std::vector<bool> bits;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetBool(&b).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  ASSERT_TRUE(dec.GetString(&s).ok());
  ASSERT_TRUE(dec.GetBits(&bits, 100).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_TRUE(b);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159265358979);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(bits, (std::vector<bool>{true, false, true, true, false, false,
                                     true, false, true}));
  EXPECT_TRUE(dec.ExpectEnd().ok());
}

TEST(BufCodecTest, DetectsTruncationAndTrailingBytes) {
  BufEncoder enc;
  enc.PutU64(7);
  const std::string buf = enc.buffer();
  {
    BufDecoder dec(std::string_view(buf).substr(0, 5));
    uint64_t v = 0;
    EXPECT_FALSE(dec.GetU64(&v).ok());
  }
  {
    BufDecoder dec(buf + "x");
    uint64_t v = 0;
    ASSERT_TRUE(dec.GetU64(&v).ok());
    EXPECT_FALSE(dec.ExpectEnd().ok());
  }
}

TEST(BufCodecTest, GetCountEnforcesCap) {
  BufEncoder enc;
  enc.PutU64(1000);
  BufDecoder dec(enc.buffer());
  int64_t count = 0;
  EXPECT_FALSE(dec.GetCount(&count, 999).ok());
}

TEST(BufCodecTest, GetStringEnforcesCap) {
  BufEncoder enc;
  enc.PutString("0123456789");
  BufDecoder dec(enc.buffer());
  std::string s;
  EXPECT_FALSE(dec.GetString(&s, 9).ok());
}

// --------------------------------------------------------------------------
// Container round-trip + corruption suite
// --------------------------------------------------------------------------

std::vector<SnapshotSection> TestSections() {
  std::vector<SnapshotSection> sections;
  sections.push_back({1, std::string("alpha payload")});
  sections.push_back({7, std::string("\x00\x01\x02\xff", 4)});
  sections.push_back({9, std::string()});  // empty payload is legal
  return sections;
}

TEST(SnapshotContainerTest, RoundTrips) {
  const std::string image = ckpt::EncodeSnapshot(TestSections());
  auto decoded = ckpt::DecodeSnapshot(image);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 3u);
  EXPECT_EQ((*decoded)[0].id, 1u);
  EXPECT_EQ((*decoded)[0].payload, "alpha payload");
  EXPECT_EQ((*decoded)[1].id, 7u);
  EXPECT_EQ((*decoded)[1].payload, std::string("\x00\x01\x02\xff", 4));
  EXPECT_EQ((*decoded)[2].payload, "");
}

TEST(SnapshotContainerTest, RejectsBadMagic) {
  std::string image = ckpt::EncodeSnapshot(TestSections());
  image[0] ^= 0x01;
  EXPECT_FALSE(ckpt::DecodeSnapshot(image).ok());
}

TEST(SnapshotContainerTest, RejectsWrongVersion) {
  std::string image = ckpt::EncodeSnapshot(TestSections());
  image[8] = 99;  // little-endian u32 version field right after the magic
  EXPECT_FALSE(ckpt::DecodeSnapshot(image).ok());
}

TEST(SnapshotContainerTest, RejectsAbsurdSectionCount) {
  std::string image = ckpt::EncodeSnapshot(TestSections());
  image[12] = static_cast<char>(0xff);  // section_count low byte
  image[13] = static_cast<char>(0xff);
  EXPECT_FALSE(ckpt::DecodeSnapshot(image).ok());
}

TEST(SnapshotContainerTest, RejectsPayloadCorruption) {
  const std::string image = ckpt::EncodeSnapshot(TestSections());
  // Flip one bit in every byte position past the header in turn: each must
  // be caught by the table CRC or a payload CRC, never crash.
  for (size_t pos = 28; pos < image.size(); ++pos) {
    std::string corrupt = image;
    corrupt[pos] ^= 0x40;
    EXPECT_FALSE(ckpt::DecodeSnapshot(corrupt).ok()) << "byte " << pos;
  }
}

TEST(SnapshotContainerTest, RejectsEveryTruncation) {
  const std::string image = ckpt::EncodeSnapshot(TestSections());
  for (size_t len = 0; len < image.size(); ++len) {
    EXPECT_FALSE(ckpt::DecodeSnapshot(std::string_view(image).substr(0, len)).ok())
        << "length " << len;
  }
}

TEST(SnapshotContainerTest, RejectsTrailingGarbage) {
  std::string image = ckpt::EncodeSnapshot(TestSections());
  image += "garbage";
  EXPECT_FALSE(ckpt::DecodeSnapshot(image).ok());
}

TEST(SnapshotContainerTest, RejectsDuplicateSectionIds) {
  std::vector<SnapshotSection> sections;
  sections.push_back({3, "one"});
  sections.push_back({3, "two"});
  const std::string image = ckpt::EncodeSnapshot(sections);
  EXPECT_FALSE(ckpt::DecodeSnapshot(image).ok());
}

// --------------------------------------------------------------------------
// Executor checkpoint codec
// --------------------------------------------------------------------------

ExtractedTuple MakeTuple(TokenId join_value, TokenId second, bool good,
                         double similarity) {
  ExtractedTuple t;
  t.join_value = join_value;
  t.second_value = second;
  t.ground_truth_good = good;
  t.similarity = similarity;
  return t;
}

ExecutorCheckpoint RichExecutorCheckpoint() {
  ExecutorCheckpoint c;
  c.algorithm = JoinAlgorithmKind::kZigZag;
  c.sequence = 5;
  c.state = JoinState(100);
  c.state.AddTuple(0, MakeTuple(11, 21, true, 0.9));
  c.state.AddTuple(0, MakeTuple(11, 22, false, 0.4));
  c.state.AddTuple(1, MakeTuple(11, 31, true, 0.8));
  c.state.AddTuple(1, MakeTuple(12, 32, true, 0.7));
  TrajectoryPoint point;
  point.docs_retrieved1 = 40;
  point.good_join_tuples = 1;
  point.seconds = 12.5;
  c.trajectory.push_back(point);
  c.docs_since_snapshot = 3;
  c.deadline_hit = false;
  for (int side = 0; side < 2; ++side) {
    auto& s = c.sides[side];
    s.counters.docs_retrieved = 40 + side;
    s.counters.docs_processed = 38 + side;
    s.counters.tuples_extracted = 7 * (side + 1);
    s.seconds = 100.5 + side;
    s.fault_seconds = 2.25 * side;
    s.retrieved.assign(50, false);
    s.retrieved[3] = s.retrieved[17 + side] = true;
    s.zgjn_queue.push_back({TokenId(11 + side), 0.5});
    s.zgjn_queue.push_back({TokenId(13 + side), 0.25});
    s.zgjn_enqueued = {TokenId(11 + side), TokenId(13 + side)};
  }
  c.sides[0].has_cursor = true;
  c.sides[0].cursor.position = 12;
  c.sides[0].cursor.next_query = 4;
  c.sides[0].cursor.pending = {DocId(5), DocId(9), DocId(31)};
  c.sides[0].cursor.pending_pos = 1;
  c.sides[0].cursor.seen.assign(50, false);
  c.sides[0].cursor.seen[5] = true;
  c.oijn_probed_values = {3, 8, 11};
  c.has_faults = true;
  for (int side = 0; side < fault::kNumFaultSides; ++side) {
    for (int op = 0; op < fault::kNumFaultOps; ++op) {
      for (int w = 0; w < 4; ++w) {
        c.fault_rng.decision[side][op][w] = 0x1000u * side + 0x100u * op + w + 1;
        c.fault_rng.backoff[side][op][w] = 0x9000u * side + 0x700u * op + w + 5;
      }
    }
  }
  c.breakers[0].state = fault::CircuitBreaker::State::kOpen;
  c.breakers[0].consecutive_failures = 9;
  c.breakers[0].open_until_seconds = 321.5;
  c.breakers[0].trips = 2;
  c.has_metrics = true;
  c.metrics.counters["join.docs"] = 42;
  c.metrics.gauges["join.theta1"] = 0.4;
  obs::MetricsSnapshot::HistogramData h;
  h.upper_bounds = {1.0, 10.0};
  h.bucket_counts = {3, 4, 1};
  h.count = 8;
  h.sum = 25.75;
  c.metrics.histograms["join.batch"] = h;
  // v4 extraction-cache image: entries in eviction (LRU→MRU) order.
  c.has_extraction_cache = true;
  for (DocId doc = 0; doc < 3; ++doc) {
    ExtractionCache::Entry entry;
    entry.key.side = static_cast<int32_t>(doc % 2);
    entry.key.doc = doc;
    entry.key.theta = 0.4;
    ExtractedTuple tuple = MakeTuple(100 + doc, 200 + doc, doc != 1, 0.25 * (doc + 1));
    tuple.doc_id = doc;
    entry.batch.push_back(tuple);
    c.extraction_cache_entries.push_back(std::move(entry));
  }
  return c;
}

TEST(ExecutorCodecTest, RoundTripsAndReencodesIdentically) {
  const ExecutorCheckpoint original = RichExecutorCheckpoint();
  std::vector<SnapshotSection> sections;
  ckpt::AppendExecutorSections(original, &sections);

  ExecutorCheckpoint decoded;
  const Status status = ckpt::DecodeExecutorSections(sections, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(decoded.algorithm, original.algorithm);
  EXPECT_EQ(decoded.sequence, original.sequence);
  EXPECT_EQ(decoded.docs_since_snapshot, original.docs_since_snapshot);
  EXPECT_EQ(decoded.state.good_join_tuples(), original.state.good_join_tuples());
  EXPECT_EQ(decoded.state.bad_join_tuples(), original.state.bad_join_tuples());
  EXPECT_EQ(decoded.state.extracted_occurrences(0),
            original.state.extracted_occurrences(0));
  EXPECT_EQ(decoded.state.output().size(), original.state.output().size());
  EXPECT_EQ(decoded.sides[0].counters.docs_retrieved, 40);
  EXPECT_EQ(decoded.sides[0].cursor.pending, original.sides[0].cursor.pending);
  EXPECT_EQ(decoded.sides[1].zgjn_enqueued, original.sides[1].zgjn_enqueued);
  EXPECT_EQ(decoded.oijn_probed_values, original.oijn_probed_values);
  EXPECT_EQ(decoded.fault_rng.decision[1][2], original.fault_rng.decision[1][2]);
  EXPECT_EQ(decoded.breakers[0].state, fault::CircuitBreaker::State::kOpen);
  EXPECT_EQ(decoded.metrics.counters.at("join.docs"), 42);
  EXPECT_DOUBLE_EQ(decoded.metrics.histograms.at("join.batch").sum, 25.75);
  ASSERT_TRUE(decoded.has_extraction_cache);
  ASSERT_EQ(decoded.extraction_cache_entries.size(),
            original.extraction_cache_entries.size());
  for (size_t i = 0; i < original.extraction_cache_entries.size(); ++i) {
    const auto& got = decoded.extraction_cache_entries[i];
    const auto& want = original.extraction_cache_entries[i];
    EXPECT_TRUE(got.key == want.key) << "cache entry " << i;
    ASSERT_EQ(got.batch.size(), want.batch.size());
    EXPECT_EQ(got.batch[0].join_value, want.batch[0].join_value);
    EXPECT_EQ(got.batch[0].ground_truth_good, want.batch[0].ground_truth_good);
    EXPECT_DOUBLE_EQ(got.batch[0].similarity, want.batch[0].similarity);
  }

  // Deterministic encoding: re-encoding the decoded checkpoint reproduces
  // the original bytes exactly (hash maps are emitted sorted).
  std::vector<SnapshotSection> reencoded;
  ckpt::AppendExecutorSections(decoded, &reencoded);
  ASSERT_EQ(reencoded.size(), sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    EXPECT_EQ(reencoded[i].id, sections[i].id);
    EXPECT_EQ(reencoded[i].payload, sections[i].payload) << "section " << i;
  }
}

TEST(ExecutorCodecTest, RejectsMissingSections) {
  std::vector<SnapshotSection> sections;
  ckpt::AppendExecutorSections(RichExecutorCheckpoint(), &sections);
  for (size_t drop = 0; drop < sections.size(); ++drop) {
    std::vector<SnapshotSection> partial = sections;
    partial.erase(partial.begin() + static_cast<ptrdiff_t>(drop));
    ExecutorCheckpoint decoded;
    EXPECT_FALSE(ckpt::DecodeExecutorSections(partial, &decoded).ok())
        << "dropped section " << sections[drop].id;
  }
}

TEST(ExecutorCodecTest, RejectsPerSectionTrailingGarbage) {
  std::vector<SnapshotSection> sections;
  ckpt::AppendExecutorSections(RichExecutorCheckpoint(), &sections);
  for (size_t i = 0; i < sections.size(); ++i) {
    std::vector<SnapshotSection> corrupt = sections;
    corrupt[i].payload += '\x01';
    ExecutorCheckpoint decoded;
    EXPECT_FALSE(ckpt::DecodeExecutorSections(corrupt, &decoded).ok())
        << "section " << sections[i].id;
  }
}

TEST(ExecutorCodecTest, RejectsAbsurdElementCounts) {
  std::vector<SnapshotSection> sections;
  ckpt::AppendExecutorSections(RichExecutorCheckpoint(), &sections);
  // The trajectory section starts with its element count: blow it up.
  for (auto& section : sections) {
    if (section.id == ckpt::kSectionTrajectory) {
      BufEncoder enc;
      enc.PutU64(uint64_t{1} << 40);
      section.payload = enc.buffer() + section.payload.substr(8);
    }
  }
  ExecutorCheckpoint decoded;
  EXPECT_FALSE(ckpt::DecodeExecutorSections(sections, &decoded).ok());
}

TEST(ExecutorCodecTest, RejectsUnknownEnumValues) {
  std::vector<SnapshotSection> sections;
  ckpt::AppendExecutorSections(RichExecutorCheckpoint(), &sections);
  for (auto& section : sections) {
    if (section.id == ckpt::kSectionExecutorCore) section.payload[0] = 7;
  }
  ExecutorCheckpoint decoded;
  EXPECT_FALSE(ckpt::DecodeExecutorSections(sections, &decoded).ok());
}

// --------------------------------------------------------------------------
// Adaptive checkpoint codec
// --------------------------------------------------------------------------

AdaptiveCheckpoint RichAdaptiveCheckpoint(bool with_executor) {
  AdaptiveCheckpoint c;
  c.sequence = 9;
  c.current_plan.algorithm = JoinAlgorithmKind::kOuterInner;
  c.current_plan.theta1 = 0.6;
  c.current_plan.retrieval1 = RetrievalStrategyKind::kFilteredScan;
  c.current_plan.outer_is_relation1 = false;
  c.switches = 1;
  c.side_degraded[1] = true;
  AdaptivePhase phase;
  phase.plan.algorithm = JoinAlgorithmKind::kIndependent;
  phase.seconds = 55.5;
  phase.end_point.docs_processed1 = 123;
  phase.switched_away = true;
  c.phases.push_back(phase);
  c.total_seconds = 55.5;
  c.degraded = true;
  c.docs_dropped = 4;
  c.breaker_reoptimizations = 1;
  c.has_estimate = true;
  c.final_estimate.relation1.num_documents = 1500;
  c.final_estimate.relation1.good_freq.mean = 2.5;
  c.final_estimate.relation1.aqg_queries.push_back({0.8, 40.0});
  c.final_estimate.relation1.hits_pgf =
      GeneratingFunction::FromCheckpoint({0.5, 0.25, 0.25}, 0.0);
  c.final_estimate.relation2.num_good_values = 77;
  c.final_estimate.num_agg = 31;
  c.final_estimate.coupling = FrequencyCoupling::kIdentical;
  c.next_estimate_at = 600;
  c.seen_breaker_trips[0] = 2;
  c.seed_values = {5, 6};
  c.has_executor = with_executor;
  if (with_executor) {
    c.executor = RichExecutorCheckpoint();
  } else {
    c.has_metrics = true;
    c.metrics.counters["adaptive.phases"] = 2;
  }
  return c;
}

TEST(AdaptiveCodecTest, RoundTripsMidPhaseCheckpoint) {
  const AdaptiveCheckpoint original = RichAdaptiveCheckpoint(true);
  std::vector<SnapshotSection> sections;
  ckpt::AppendAdaptiveSections(original, &sections);
  AdaptiveCheckpoint decoded;
  const Status status = ckpt::DecodeAdaptiveSections(sections, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded.sequence, 9);
  EXPECT_EQ(decoded.current_plan.Describe(), original.current_plan.Describe());
  EXPECT_EQ(decoded.switches, 1);
  EXPECT_TRUE(decoded.side_degraded[1]);
  ASSERT_EQ(decoded.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded.phases[0].seconds, 55.5);
  EXPECT_TRUE(decoded.has_estimate);
  EXPECT_EQ(decoded.final_estimate.relation1.num_documents, 1500);
  EXPECT_EQ(decoded.final_estimate.relation1.hits_pgf.coefficients(),
            original.final_estimate.relation1.hits_pgf.coefficients());
  EXPECT_EQ(decoded.final_estimate.coupling, FrequencyCoupling::kIdentical);
  EXPECT_EQ(decoded.seed_values, original.seed_values);
  ASSERT_TRUE(decoded.has_executor);
  EXPECT_EQ(decoded.executor.sequence, original.executor.sequence);

  std::vector<SnapshotSection> reencoded;
  ckpt::AppendAdaptiveSections(decoded, &reencoded);
  ASSERT_EQ(reencoded.size(), sections.size());
  for (size_t i = 0; i < sections.size(); ++i) {
    EXPECT_EQ(reencoded[i].payload, sections[i].payload) << "section " << i;
  }
}

TEST(AdaptiveCodecTest, RoundTripsPhaseBoundaryCheckpoint) {
  const AdaptiveCheckpoint original = RichAdaptiveCheckpoint(false);
  std::vector<SnapshotSection> sections;
  ckpt::AppendAdaptiveSections(original, &sections);
  EXPECT_EQ(sections.size(), 1u);  // no executor sections at a boundary
  AdaptiveCheckpoint decoded;
  ASSERT_TRUE(ckpt::DecodeAdaptiveSections(sections, &decoded).ok());
  EXPECT_FALSE(decoded.has_executor);
  ASSERT_TRUE(decoded.has_metrics);
  EXPECT_EQ(decoded.metrics.counters.at("adaptive.phases"), 2);
}

// --------------------------------------------------------------------------
// Manifest + manager
// --------------------------------------------------------------------------

class CheckpointManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ckpt_mgr_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }
  void TearDown() override {
    // Best-effort cleanup of the small per-test directory.
    auto listed = ckpt::LoadLatestValidCheckpoint(dir_);
    (void)listed;
    std::string cmd = "rm -rf '" + dir_ + "'";
    std::system(cmd.c_str());
  }

  ckpt::CheckpointManifest Manifest() {
    ckpt::CheckpointManifest m;
    m["scenario"] = "/tmp/x.iejoin";
    m["algorithm"] = "idjn";
    return m;
  }

  std::string dir_;
};

TEST_F(CheckpointManagerTest, FileNameIsSequenceOrdered) {
  EXPECT_EQ(ckpt::CheckpointFileName(7), "ckpt-00000007.iejc");
  EXPECT_LT(ckpt::CheckpointFileName(99), ckpt::CheckpointFileName(100));
}

TEST_F(CheckpointManagerTest, WritesAndLoadsLatest) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest());
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  ExecutorCheckpoint c = RichExecutorCheckpoint();
  for (int64_t seq = 1; seq <= 3; ++seq) {
    c.sequence = seq;
    c.docs_since_snapshot = seq * 10;
    ASSERT_TRUE((*manager)->Write(c).ok());
  }
  EXPECT_EQ((*manager)->checkpoints_written(), 3);

  auto loaded = ckpt::LoadLatestValidCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->is_adaptive);
  EXPECT_EQ(loaded->sequence, 3);
  EXPECT_EQ(loaded->executor.docs_since_snapshot, 30);
  EXPECT_EQ(loaded->manifest.at("algorithm"), "idjn");
}

TEST_F(CheckpointManagerTest, FallsBackPastCorruptNewestFile) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest());
  ASSERT_TRUE(manager.ok());
  ExecutorCheckpoint c = RichExecutorCheckpoint();
  c.sequence = 1;
  ASSERT_TRUE((*manager)->Write(c).ok());
  c.sequence = 2;
  ASSERT_TRUE((*manager)->Write(c).ok());

  // Truncate the newest file (simulated torn write on a damaged disk).
  {
    std::ofstream out(dir_ + "/" + ckpt::CheckpointFileName(2),
                      std::ios::binary | std::ios::trunc);
    out << "IEJCKPT\n";
  }
  auto loaded = ckpt::LoadLatestValidCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sequence, 1);
}

TEST_F(CheckpointManagerTest, AllCorruptIsNotFound) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest());
  ASSERT_TRUE(manager.ok());
  ExecutorCheckpoint c = RichExecutorCheckpoint();
  c.sequence = 1;
  ASSERT_TRUE((*manager)->Write(c).ok());
  {
    std::ofstream out(dir_ + "/" + ckpt::CheckpointFileName(1),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  auto loaded = ckpt::LoadLatestValidCheckpoint(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointManagerTest, EmptyDirectoryIsNotFound) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest());
  ASSERT_TRUE(manager.ok());
  auto loaded = ckpt::LoadLatestValidCheckpoint(dir_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointManagerTest, MissingDirectoryIsNotFound) {
  auto loaded = ckpt::LoadLatestValidCheckpoint(dir_ + "/nope");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------------------
// Keep-last-N retention
// --------------------------------------------------------------------------

bool CheckpointFileExists(const std::string& dir, int64_t sequence) {
  std::ifstream in(dir + "/" + ckpt::CheckpointFileName(sequence),
                   std::ios::binary);
  return in.good();
}

TEST_F(CheckpointManagerTest, RetentionDeletesOldestFirst) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest(), /*keep_last=*/2);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ((*manager)->keep_last(), 2);
  ExecutorCheckpoint c = RichExecutorCheckpoint();
  for (int64_t seq = 1; seq <= 5; ++seq) {
    c.sequence = seq;
    ASSERT_TRUE((*manager)->Write(c).ok());
    // After every write exactly the two newest survive: the retention pass
    // removes the oldest files, never the one just written.
    for (int64_t old = 1; old <= seq; ++old) {
      EXPECT_EQ(CheckpointFileExists(dir_, old), old >= seq - 1)
          << "after writing " << seq << ", sequence " << old;
    }
  }
  EXPECT_EQ((*manager)->checkpoints_pruned(), 3);
  auto loaded = ckpt::LoadLatestValidCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sequence, 5);
}

TEST_F(CheckpointManagerTest, KeepZeroRetainsEverything) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest(), /*keep_last=*/0);
  ASSERT_TRUE(manager.ok());
  ExecutorCheckpoint c = RichExecutorCheckpoint();
  for (int64_t seq = 1; seq <= 4; ++seq) {
    c.sequence = seq;
    ASSERT_TRUE((*manager)->Write(c).ok());
  }
  for (int64_t seq = 1; seq <= 4; ++seq) {
    EXPECT_TRUE(CheckpointFileExists(dir_, seq)) << seq;
  }
  EXPECT_EQ((*manager)->checkpoints_pruned(), 0);
}

TEST_F(CheckpointManagerTest, RetentionPreservesFallbackPastTornNewest) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest(), /*keep_last=*/2);
  ASSERT_TRUE(manager.ok());
  ExecutorCheckpoint c = RichExecutorCheckpoint();
  for (int64_t seq = 1; seq <= 3; ++seq) {
    c.sequence = seq;
    ASSERT_TRUE((*manager)->Write(c).ok());
  }
  // keep_last=2 left sequences 2 and 3; tear the newest (simulated disk
  // damage after the write) — resume must still find sequence 2.
  {
    std::ofstream out(dir_ + "/" + ckpt::CheckpointFileName(3),
                      std::ios::binary | std::ios::trunc);
    out << "IEJCKPT\n";
  }
  auto loaded = ckpt::LoadLatestValidCheckpoint(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sequence, 2);

  // The run continues: the next write prunes the torn file's predecessor
  // but the just-written snapshot immediately becomes the newest valid one.
  c.sequence = 4;
  ASSERT_TRUE((*manager)->Write(c).ok());
  EXPECT_FALSE(CheckpointFileExists(dir_, 2));
  auto reloaded = ckpt::LoadLatestValidCheckpoint(dir_);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->sequence, 4);
}

TEST_F(CheckpointManagerTest, RejectsNegativeKeepLast) {
  auto manager = ckpt::CheckpointManager::Open(dir_, Manifest(), /*keep_last=*/-1);
  ASSERT_FALSE(manager.ok());
  EXPECT_EQ(manager.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CheckpointManagerTest, ManifestRoundTrips) {
  ckpt::CheckpointManifest manifest;
  manifest["scenario"] = "/data/s.iejoin";
  manifest["faults"] = "extract.error=0.1";
  manifest["theta1"] = "0.40000000000000002";
  std::vector<SnapshotSection> sections;
  ckpt::AppendManifestSection(manifest, &sections);
  ckpt::CheckpointManifest decoded;
  ASSERT_TRUE(ckpt::DecodeManifestSection(sections, &decoded).ok());
  EXPECT_EQ(decoded, manifest);
}

}  // namespace
}  // namespace iejoin
