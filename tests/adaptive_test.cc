// Behavioral tests for the adaptive join executor: switching policy,
// hysteresis, estimate-driven stopping, and accounting.

#include <gtest/gtest.h>

#include "harness/workbench.h"
#include "optimizer/adaptive_executor.h"

namespace iejoin {
namespace {

class AdaptiveTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static AdaptiveOptions BaseOptions() {
    AdaptiveOptions options;
    options.requirement.min_good_tuples = 25;
    options.requirement.max_bad_tuples = 100000;
    options.initial_plan.algorithm = JoinAlgorithmKind::kIndependent;
    options.initial_plan.theta1 = options.initial_plan.theta2 = 0.4;
    options.initial_plan.retrieval1 = RetrievalStrategyKind::kScan;
    options.initial_plan.retrieval2 = RetrievalStrategyKind::kScan;
    options.reestimate_every_docs = 300;
    options.min_docs_for_estimate = 600;
    options.estimator.mixture.max_frequency = 100;
    return options;
  }

  static Result<AdaptiveResult> Run(const AdaptiveOptions& options) {
    auto inputs = bench().OracleOptimizerInputs(/*include_zgjn_pgfs=*/false);
    EXPECT_TRUE(inputs.ok());
    PlanEnumerationOptions enum_options;
    enum_options.include_zgjn = false;
    AdaptiveJoinExecutor adaptive(bench().resources(), *inputs, enum_options);
    return adaptive.Run(options);
  }

  static Workbench* bench_;
};

Workbench* AdaptiveTest::bench_ = nullptr;

TEST_F(AdaptiveTest, ZeroMaxSwitchesRunsSinglePhase) {
  AdaptiveOptions options = BaseOptions();
  options.max_switches = 0;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->phases.size(), 1u);
  EXPECT_FALSE(result->phases[0].switched_away);
}

TEST_F(AdaptiveTest, ZeroSwitchAdvantageNeverSwitches) {
  // A new plan must be predicted faster than 0 x current time: impossible.
  AdaptiveOptions options = BaseOptions();
  options.switch_advantage = 0.0;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->phases.size(), 1u);
}

TEST_F(AdaptiveTest, SwitchesWhenClearlyBeneficial) {
  // Generous hysteresis: from a Scan/Scan start the optimizer finds a
  // query/filter-based plan it predicts to be far faster for a small τ_g.
  AdaptiveOptions options = BaseOptions();
  options.switch_advantage = 0.7;
  options.max_switches = 2;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->phases.size(), 2u);
  EXPECT_TRUE(result->phases[0].switched_away);
  EXPECT_NE(result->phases[0].plan.Describe(), result->phases[1].plan.Describe());
}

TEST_F(AdaptiveTest, RespectsMaxSwitchesBudget) {
  AdaptiveOptions options = BaseOptions();
  options.max_switches = 1;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->phases.size(), 2u);
}

TEST_F(AdaptiveTest, TotalTimeSumsPhases) {
  AdaptiveOptions options = BaseOptions();
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  double sum = 0.0;
  for (const AdaptivePhase& phase : result->phases) sum += phase.seconds;
  EXPECT_NEAR(result->total_seconds, sum, 1e-9);
}

TEST_F(AdaptiveTest, EstimateDrivenStopBeatsExhaustion) {
  // With a tiny requirement the executor should stop long before scanning
  // both databases end to end.
  AdaptiveOptions options = BaseOptions();
  options.requirement.min_good_tuples = 10;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  const TrajectoryPoint& end = result->phases.back().end_point;
  EXPECT_LT(end.docs_processed1 + end.docs_processed2,
            bench().database1().size() + bench().database2().size());
}

TEST_F(AdaptiveTest, FilteredScanPhasesAlsoEstimate) {
  // The occurrence-weighted classifier correction makes FS a valid probe:
  // starting from an FS/FS plan still produces usable online estimates.
  AdaptiveOptions options = BaseOptions();
  options.initial_plan.retrieval1 = RetrievalStrategyKind::kFilteredScan;
  options.initial_plan.retrieval2 = RetrievalStrategyKind::kFilteredScan;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->has_estimate);
  const auto& truth = bench().scenario().corpus1->ground_truth();
  const double true_values =
      static_cast<double>(truth.num_good_values + truth.num_bad_values);
  const double est_values =
      static_cast<double>(result->final_estimate.relation1.num_good_values +
                          result->final_estimate.relation1.num_bad_values);
  EXPECT_GT(est_values, true_values / 4.0);
  EXPECT_LT(est_values, true_values * 4.0);
}

TEST_F(AdaptiveTest, QueryDrivenInitialPlanProducesNoEstimates) {
  AdaptiveOptions options = BaseOptions();
  options.initial_plan.algorithm = JoinAlgorithmKind::kOuterInner;
  options.initial_plan.outer_is_relation1 = true;
  options.initial_plan.retrieval1 = RetrievalStrategyKind::kScan;
  options.max_switches = 0;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  // OIJN's inner side is query-driven: estimation is (deliberately)
  // disabled, so the run completes on exhaustion without estimates.
  EXPECT_FALSE(result->has_estimate);
  EXPECT_TRUE(result->phases.back().exhausted);
}

TEST_F(AdaptiveTest, HugeRequirementExhaustsAndReportsHonestly) {
  AdaptiveOptions options = BaseOptions();
  options.requirement.min_good_tuples = 10000000;  // unreachable
  options.max_switches = 1;
  auto result = Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->requirement_met);
  EXPECT_TRUE(result->phases.back().exhausted);
}

TEST_F(AdaptiveTest, TelemetryRecordsPhasesSwitchesAndReport) {
  // Same setup as SwitchesWhenClearlyBeneficial, with telemetry attached:
  // the span tree and counters must mirror the phase/switch structure, and
  // the run must assemble a RunReport.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  AdaptiveOptions options = BaseOptions();
  options.switch_advantage = 0.7;
  options.max_switches = 2;
  options.metrics = &registry;
  options.tracer = &tracer;
  auto result = Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->phases.size(), 2u);
  EXPECT_TRUE(result->phases[0].switched_away);

  size_t phase_spans = 0;
  size_t switch_spans = 0;
  size_t mle_spans = 0;
  for (const obs::SpanRecord& span : tracer.spans()) {
    if (span.name == "adaptive.phase") ++phase_spans;
    if (span.name == "plan.switch") ++switch_spans;
    if (span.name == "estimate.mle") ++mle_spans;
  }
  EXPECT_EQ(phase_spans, result->phases.size());
  EXPECT_GE(mle_spans, 1u);

  size_t switched = 0;
  for (const AdaptivePhase& phase : result->phases) {
    if (phase.switched_away) ++switched;
  }
  EXPECT_EQ(switch_spans, switched);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("adaptive.phases"),
            static_cast<int64_t>(result->phases.size()));
  EXPECT_EQ(snap.counters.at("adaptive.plan_switches"),
            static_cast<int64_t>(switched));
  EXPECT_GE(snap.counters.at("adaptive.reestimates"), 1);
  EXPECT_GT(snap.counters.at("optimizer.plans_evaluated"), 0);

  ASSERT_TRUE(result->has_report);
  EXPECT_EQ(result->report.label, result->phases.back().plan.Describe());
  EXPECT_GE(result->report.metrics.size(), 10u);
  EXPECT_FALSE(result->report.spans.empty());
  EXPECT_TRUE(result->report.prediction.has_prediction);
  EXPECT_DOUBLE_EQ(result->report.prediction.observed_good,
                   static_cast<double>(result->good_join_tuples));
}

TEST_F(AdaptiveTest, TelemetryDoesNotChangeAdaptiveOutcome) {
  AdaptiveOptions options = BaseOptions();
  auto plain = Run(options);
  ASSERT_TRUE(plain.ok());

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  options.metrics = &registry;
  options.tracer = &tracer;
  auto instrumented = Run(options);
  ASSERT_TRUE(instrumented.ok());

  ASSERT_EQ(plain->phases.size(), instrumented->phases.size());
  for (size_t i = 0; i < plain->phases.size(); ++i) {
    EXPECT_EQ(plain->phases[i].plan.Describe(),
              instrumented->phases[i].plan.Describe());
    EXPECT_DOUBLE_EQ(plain->phases[i].seconds, instrumented->phases[i].seconds);
  }
  EXPECT_EQ(plain->good_join_tuples, instrumented->good_join_tuples);
  EXPECT_EQ(plain->bad_join_tuples, instrumented->bad_join_tuples);
  EXPECT_DOUBLE_EQ(plain->total_seconds, instrumented->total_seconds);
}

}  // namespace
}  // namespace iejoin
