// Streaming-telemetry determinism suite: the TimeSeriesRecorder's frame
// stream must be byte-identical at every thread count for all three join
// algorithms, and a run resumed from checkpoint K must emit exactly the
// frames the uninterrupted run emitted after K (concatenation property) —
// including the checkpoint-bytes series, which a resume seeds from the
// loaded image's predecessors plus the image itself. Runs unlabeled so the
// TSan lane covers it.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "checkpoint/join_checkpoint.h"
#include "checkpoint/snapshot_format.h"
#include "common/thread_pool.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace iejoin {
namespace {

// ---------------------------------------------------------------------------
// TimeSeriesRecorder unit behavior
// ---------------------------------------------------------------------------

obs::TelemetryFrame FrameAt(int64_t docs1, int64_t docs2, double seconds) {
  obs::TelemetryFrame frame;
  frame.sample.side1.docs_retrieved = docs1;
  frame.sample.side2.docs_retrieved = docs2;
  frame.sample.seconds = seconds;
  return frame;
}

TEST(TimeSeriesRecorderTest, DocsCadenceAnchorsAtLastSample) {
  obs::TimeSeriesRecorder::Options options;
  options.sample_every_docs = 10;
  obs::TimeSeriesRecorder recorder(options);
  EXPECT_FALSE(recorder.ShouldSample(9, 0.0));
  EXPECT_TRUE(recorder.ShouldSample(10, 0.0));
  recorder.Record(FrameAt(7, 6, 1.0));  // anchor moves to 13 docs
  EXPECT_FALSE(recorder.ShouldSample(22, 0.0));
  EXPECT_TRUE(recorder.ShouldSample(23, 0.0));
}

TEST(TimeSeriesRecorderTest, TimeCadenceIndependentOfDocs) {
  obs::TimeSeriesRecorder::Options options;
  options.sample_every_docs = 0;  // docs cadence off
  options.sample_every_seconds = 5.0;
  obs::TimeSeriesRecorder recorder(options);
  EXPECT_FALSE(recorder.ShouldSample(1000000, 4.9));
  EXPECT_TRUE(recorder.ShouldSample(0, 5.0));
  recorder.Record(FrameAt(0, 0, 7.5));
  EXPECT_FALSE(recorder.ShouldSample(0, 12.4));
  EXPECT_TRUE(recorder.ShouldSample(0, 12.5));
}

TEST(TimeSeriesRecorderTest, SequenceNumbersAdvanceAndCursorRestores) {
  obs::TimeSeriesRecorder::Options options;
  obs::TimeSeriesRecorder first(options);
  first.Record(FrameAt(1, 1, 1.0));
  first.Record(FrameAt(2, 2, 2.0));
  ASSERT_EQ(first.frames().size(), 2u);
  EXPECT_NE(first.frames()[0].find("\"seq\":0,"), std::string::npos);
  EXPECT_NE(first.frames()[1].find("\"seq\":1,"), std::string::npos);
  EXPECT_EQ(first.cursor().frames_emitted, 2);
  EXPECT_EQ(first.cursor().docs_at_last_sample, 4);

  // A restored recorder continues the sequence instead of restarting it.
  obs::TimeSeriesRecorder resumed(options);
  resumed.RestoreCursor(first.cursor());
  resumed.Record(FrameAt(3, 3, 3.0));
  ASSERT_EQ(resumed.frames().size(), 1u);
  EXPECT_NE(resumed.frames()[0].find("\"seq\":2,"), std::string::npos);
}

TEST(TimeSeriesRecorderTest, ResidualOnlyWithPrediction) {
  obs::TimeSeriesRecorder::Options options;
  obs::TimeSeriesRecorder recorder(options);
  obs::TelemetryFrame frame = FrameAt(1, 1, 10.0);
  frame.sample.good_join_tuples = 40;
  frame.sample.bad_join_tuples = 5;
  recorder.Record(frame);
  EXPECT_NE(recorder.frames()[0].find("\"residual\":null"), std::string::npos);

  recorder.SetPrediction(/*good=*/100.0, /*bad=*/20.0, /*seconds=*/50.0);
  recorder.Record(frame);
  const std::string& with = recorder.frames()[1];
  EXPECT_EQ(with.find("\"residual\":null"), std::string::npos);
  EXPECT_NE(with.find("\"predicted_good\":100"), std::string::npos);
  EXPECT_NE(with.find("\"remaining_good\":60"), std::string::npos);
  EXPECT_NE(with.find("\"remaining_bad\":15"), std::string::npos);
  EXPECT_NE(with.find("\"remaining_seconds\":40"), std::string::npos);
}

TEST(TimeSeriesRecorderTest, FileModeAppendsOneLinePerFrame) {
  const std::string path = ::testing::TempDir() + "/telemetry_unit.jsonl";
  obs::TimeSeriesRecorder::Options options;
  obs::TimeSeriesRecorder recorder(options);
  ASSERT_TRUE(recorder.OpenFile(path).ok());
  recorder.Record(FrameAt(1, 0, 1.0));
  recorder.Record(FrameAt(2, 0, 2.0));
  EXPECT_TRUE(recorder.status().ok());
  EXPECT_TRUE(recorder.frames().empty()) << "file mode must not buffer";

  auto contents = ckpt::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  int64_t lines = 0;
  for (const char c : *contents) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2);
  EXPECT_NE(contents->find("\"seq\":0,"), std::string::npos);
  EXPECT_NE(contents->find("\"seq\":1,"), std::string::npos);
}

TEST(TimeSeriesRecorderTest, TelemetryCursorSurvivesCheckpointCodec) {
  ExecutorCheckpoint checkpoint;
  checkpoint.sequence = 3;  // the codec rejects sequence < 1
  checkpoint.has_telemetry = true;
  checkpoint.telemetry_frames_emitted = 17;
  checkpoint.telemetry_docs_at_last_sample = 1088;
  checkpoint.telemetry_seconds_at_last_sample = 123.25;
  checkpoint.checkpoint_bytes_written = 65536;

  std::vector<ckpt::SnapshotSection> sections;
  ckpt::AppendExecutorSections(checkpoint, &sections);
  auto decoded_sections = ckpt::DecodeSnapshot(ckpt::EncodeSnapshot(sections));
  ASSERT_TRUE(decoded_sections.ok()) << decoded_sections.status().ToString();
  ExecutorCheckpoint decoded;
  ASSERT_TRUE(ckpt::DecodeExecutorSections(*decoded_sections, &decoded).ok());
  EXPECT_TRUE(decoded.has_telemetry);
  EXPECT_EQ(decoded.telemetry_frames_emitted, 17);
  EXPECT_EQ(decoded.telemetry_docs_at_last_sample, 1088);
  EXPECT_DOUBLE_EQ(decoded.telemetry_seconds_at_last_sample, 123.25);
  EXPECT_EQ(decoded.checkpoint_bytes_written, 65536);
}

// ---------------------------------------------------------------------------
// End-to-end determinism over real executions
// ---------------------------------------------------------------------------

/// Captures delivered checkpoints both decoded (for resume) and as encoded
/// images, and reports each image's size like the durable CheckpointManager
/// does — the executor accumulates it into the checkpoint-bytes series.
class ByteCountingSink : public CheckpointSink {
 public:
  Status Write(const ExecutorCheckpoint& checkpoint) override {
    std::vector<ckpt::SnapshotSection> sections;
    ckpt::AppendExecutorSections(checkpoint, &sections);
    images.push_back(ckpt::EncodeSnapshot(sections));
    checkpoints.push_back(checkpoint);
    return Status::Ok();
  }
  int64_t last_write_bytes() const override {
    return images.empty() ? 0 : static_cast<int64_t>(images.back().size());
  }

  std::vector<ExecutorCheckpoint> checkpoints;
  std::vector<std::string> images;
};

class TelemetryDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinPlanSpec PlanFor(JoinAlgorithmKind kind) {
    JoinPlanSpec plan;
    plan.algorithm = kind;
    plan.theta1 = plan.theta2 = 0.4;
    plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
    return plan;
  }

  static fault::FaultPlan TestFaults() {
    fault::FaultPlan plan;
    plan.set_error_rate(fault::FaultOp::kExtract, 0.05);
    plan.set_timeout(fault::FaultOp::kQuery, 0.02, 1.5);
    return plan;
  }

  struct Capture {
    std::vector<std::string> frames;
    std::vector<ExecutorCheckpoint> checkpoints;
    std::vector<std::string> images;
  };

  /// One instrumented run: metrics + in-memory telemetry + byte-counting
  /// checkpoint sink, optionally resumed and optionally pooled. The
  /// prediction is fixed so the residual block participates in the
  /// byte-identity comparison.
  static Capture Run(const JoinPlanSpec& plan, const fault::FaultPlan* faults,
                     ThreadPool* pool,
                     const ExecutorCheckpoint* resume_from = nullptr,
                     int64_t resume_bytes = 0) {
    ByteCountingSink sink;
    obs::MetricsRegistry registry;
    obs::TimeSeriesRecorder::Options recorder_options;
    recorder_options.sample_every_docs = 48;
    obs::TimeSeriesRecorder recorder(recorder_options);
    recorder.SetPrediction(/*good=*/120.0, /*bad=*/30.0, /*seconds=*/5000.0);

    JoinExecutionOptions options;
    options.max_output_tuples = 20000;
    options.fault_plan = faults;
    options.checkpoint_sink = &sink;
    options.checkpoint_every_docs = 32;
    options.metrics = &registry;
    options.pool = pool;
    options.telemetry = &recorder;
    options.resume_from = resume_from;
    options.resume_checkpoint_bytes = resume_bytes;
    auto result = bench().RunPlan(plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(recorder.status().ok());

    Capture capture;
    capture.frames = recorder.frames();
    capture.checkpoints = std::move(sink.checkpoints);
    capture.images = std::move(sink.images);
    return capture;
  }

  /// Frames must be byte-identical between the sequential run and every
  /// thread count — telemetry is driver-thread state in retrieval order.
  static void CheckThreadInvariance(JoinAlgorithmKind kind,
                                    const fault::FaultPlan* faults) {
    const JoinPlanSpec plan = PlanFor(kind);
    const Capture expected = Run(plan, faults, nullptr);
    ASSERT_GE(expected.frames.size(), 2u)
        << "scenario too small to emit telemetry frames";
    EXPECT_NE(expected.frames.back().find("\"final\":true"), std::string::npos);
    for (size_t i = 0; i + 1 < expected.frames.size(); ++i) {
      EXPECT_NE(expected.frames[i].find("\"final\":false"), std::string::npos);
    }

    for (int threads : {1, 8}) {
      ThreadPool pool(threads);
      const Capture parallel = Run(plan, faults, &pool);
      ASSERT_EQ(parallel.frames.size(), expected.frames.size())
          << JoinAlgorithmName(kind) << " threads=" << threads;
      for (size_t i = 0; i < expected.frames.size(); ++i) {
        EXPECT_EQ(parallel.frames[i], expected.frames[i])
            << JoinAlgorithmName(kind) << " frame " << i
            << " diverged at threads=" << threads;
      }
    }
  }

 private:
  static const Workbench* bench_;
};

const Workbench* TelemetryDeterminismTest::bench_ = nullptr;

TEST_F(TelemetryDeterminismTest, IdjnFramesAreThreadCountInvariant) {
  CheckThreadInvariance(JoinAlgorithmKind::kIndependent, nullptr);
}

TEST_F(TelemetryDeterminismTest, OijnFramesAreThreadCountInvariant) {
  const fault::FaultPlan faults = TestFaults();
  CheckThreadInvariance(JoinAlgorithmKind::kOuterInner, &faults);
}

TEST_F(TelemetryDeterminismTest, ZgjnFramesAreThreadCountInvariant) {
  const fault::FaultPlan faults = TestFaults();
  CheckThreadInvariance(JoinAlgorithmKind::kZigZag, &faults);
}

TEST_F(TelemetryDeterminismTest, FinalFrameCarriesCumulativeCheckpointBytes) {
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kIndependent);
  const Capture capture = Run(plan, nullptr, nullptr);
  ASSERT_GE(capture.images.size(), 1u);
  int64_t total = 0;
  for (const std::string& image : capture.images) {
    total += static_cast<int64_t>(image.size());
  }
  EXPECT_NE(capture.frames.back().find("\"checkpoint_bytes\":" +
                                       std::to_string(total) + ","),
            std::string::npos);
}

TEST_F(TelemetryDeterminismTest, ResumedRunContinuesSeriesByteIdentically) {
  const fault::FaultPlan faults = TestFaults();
  const JoinPlanSpec plan = PlanFor(JoinAlgorithmKind::kOuterInner);
  const Capture full = Run(plan, &faults, nullptr);
  ASSERT_GE(full.checkpoints.size(), 2u)
      << "scenario too small to exercise checkpointing";

  for (size_t k = 0; k < full.checkpoints.size(); ++k) {
    const ExecutorCheckpoint& checkpoint = full.checkpoints[k];
    ASSERT_TRUE(checkpoint.has_telemetry);
    // Capture precedes write: checkpoint K stores the bytes of images
    // 1..K-1, so a resume adds the loaded image's own size.
    const int64_t resume_bytes =
        checkpoint.checkpoint_bytes_written +
        static_cast<int64_t>(full.images[k].size());
    const Capture resumed =
        Run(plan, &faults, nullptr, &checkpoint, resume_bytes);

    // The resumed run emits exactly the frames after the checkpoint's
    // cursor: crashed-file frames + resumed-file frames == full series.
    const size_t already =
        static_cast<size_t>(checkpoint.telemetry_frames_emitted);
    ASSERT_LE(already, full.frames.size());
    ASSERT_EQ(resumed.frames.size(), full.frames.size() - already)
        << "resume from checkpoint " << k;
    for (size_t i = 0; i < resumed.frames.size(); ++i) {
      EXPECT_EQ(resumed.frames[i], full.frames[already + i])
          << "resume from checkpoint " << k << " frame " << i;
    }
  }
}

}  // namespace
}  // namespace iejoin
