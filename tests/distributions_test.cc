// Unit and property tests for src/distributions: combinatorial kernels,
// binomial / hypergeometric PMFs, truncated power laws, empirical discrete
// distributions, and probability generating functions.

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distributions/binomial.h"
#include "distributions/discrete.h"
#include "distributions/generating_function.h"
#include "distributions/hypergeometric.h"
#include "distributions/power_law.h"
#include "distributions/special.h"

namespace iejoin {
namespace {

// --------------------------------------------------------------------------
// Special functions
// --------------------------------------------------------------------------

TEST(SpecialTest, LogFactorialSmallValues) {
  EXPECT_DOUBLE_EQ(LogFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(LogFactorial(1), 0.0);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(SpecialTest, LogFactorialLargeMatchesLgamma) {
  EXPECT_NEAR(LogFactorial(1000), std::lgamma(1001.0), 1e-9);
}

TEST(SpecialTest, LogFactorialCacheBoundarySeam) {
  // Values straddling the internal cache boundary must agree with lgamma.
  for (int64_t n = 250; n <= 260; ++n) {
    EXPECT_NEAR(LogFactorial(n), std::lgamma(static_cast<double>(n) + 1.0), 1e-9)
        << "n=" << n;
  }
}

TEST(SpecialTest, ChooseSmall) {
  EXPECT_DOUBLE_EQ(Choose(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(Choose(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(Choose(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(Choose(10, 11), 0.0);
  EXPECT_DOUBLE_EQ(Choose(10, -1), 0.0);
}

TEST(SpecialTest, ChooseSymmetry) {
  for (int64_t k = 0; k <= 20; ++k) {
    EXPECT_NEAR(Choose(20, k), Choose(20, 20 - k), 1e-6);
  }
}

TEST(SpecialTest, PascalIdentity) {
  for (int64_t n = 2; n <= 30; ++n) {
    for (int64_t k = 1; k < n; ++k) {
      EXPECT_NEAR(Choose(n, k), Choose(n - 1, k - 1) + Choose(n - 1, k),
                  1e-6 * Choose(n, k));
    }
  }
}

TEST(SpecialTest, GeneralizedHarmonic) {
  EXPECT_NEAR(GeneralizedHarmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(1, 2.5), 1.0, 1e-12);
  EXPECT_NEAR(GeneralizedHarmonic(2, 2.0), 1.25, 1e-12);
}

// --------------------------------------------------------------------------
// Binomial
// --------------------------------------------------------------------------

TEST(BinomialTest, PmfKnownValues) {
  EXPECT_NEAR(binomial::Pmf(2, 1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(binomial::Pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial::Pmf(3, 0, 0.2), 0.512, 1e-12);
}

TEST(BinomialTest, PmfOutsideSupportIsZero) {
  EXPECT_DOUBLE_EQ(binomial::Pmf(5, -1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial::Pmf(5, 6, 0.5), 0.0);
}

TEST(BinomialTest, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial::Pmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial::Pmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial::Pmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial::Pmf(5, 4, 1.0), 0.0);
}

class BinomialSweep : public ::testing::TestWithParam<std::pair<int64_t, double>> {};

TEST_P(BinomialSweep, PmfSumsToOne) {
  const auto [n, p] = GetParam();
  double sum = 0.0;
  for (int64_t k = 0; k <= n; ++k) sum += binomial::Pmf(n, k, p);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(BinomialSweep, PmfMeanMatchesFormula) {
  const auto [n, p] = GetParam();
  double mean = 0.0;
  for (int64_t k = 0; k <= n; ++k) mean += static_cast<double>(k) * binomial::Pmf(n, k, p);
  EXPECT_NEAR(mean, binomial::Mean(n, p), 1e-8);
}

TEST_P(BinomialSweep, PmfVarianceMatchesFormula) {
  const auto [n, p] = GetParam();
  const double mean = binomial::Mean(n, p);
  double var = 0.0;
  for (int64_t k = 0; k <= n; ++k) {
    const double d = static_cast<double>(k) - mean;
    var += d * d * binomial::Pmf(n, k, p);
  }
  EXPECT_NEAR(var, binomial::Variance(n, p), 1e-7);
}

TEST_P(BinomialSweep, CdfIsMonotoneAndReachesOne) {
  const auto [n, p] = GetParam();
  double prev = -1.0;
  for (int64_t k = 0; k <= n; ++k) {
    const double c = binomial::Cdf(n, k, p);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(binomial::Cdf(n, n, p), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BinomialSweep,
    ::testing::Values(std::make_pair<int64_t, double>(1, 0.5),
                      std::make_pair<int64_t, double>(7, 0.1),
                      std::make_pair<int64_t, double>(20, 0.9),
                      std::make_pair<int64_t, double>(64, 0.37),
                      std::make_pair<int64_t, double>(200, 0.02)));

// --------------------------------------------------------------------------
// Hypergeometric
// --------------------------------------------------------------------------

TEST(HypergeometricTest, KnownValue) {
  // Population 10, 4 marked, sample 3: P(k=2) = C(4,2)C(6,1)/C(10,3) = 36/120.
  EXPECT_NEAR(hypergeometric::Pmf(10, 3, 4, 2), 0.3, 1e-12);
}

TEST(HypergeometricTest, Support) {
  EXPECT_EQ(hypergeometric::SupportMin(10, 8, 5), 3);
  EXPECT_EQ(hypergeometric::SupportMin(10, 3, 5), 0);
  EXPECT_EQ(hypergeometric::SupportMax(10, 3, 5), 3);
  EXPECT_EQ(hypergeometric::SupportMax(10, 7, 5), 5);
  EXPECT_DOUBLE_EQ(hypergeometric::Pmf(10, 8, 5, 2), 0.0);
}

struct HyperParams {
  int64_t population;
  int64_t sample;
  int64_t marked;
};

class HypergeometricSweep : public ::testing::TestWithParam<HyperParams> {};

TEST_P(HypergeometricSweep, PmfSumsToOne) {
  const auto p = GetParam();
  double sum = 0.0;
  for (int64_t k = hypergeometric::SupportMin(p.population, p.sample, p.marked);
       k <= hypergeometric::SupportMax(p.population, p.sample, p.marked); ++k) {
    sum += hypergeometric::Pmf(p.population, p.sample, p.marked, k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(HypergeometricSweep, MeanMatchesFormula) {
  const auto p = GetParam();
  double mean = 0.0;
  for (int64_t k = hypergeometric::SupportMin(p.population, p.sample, p.marked);
       k <= hypergeometric::SupportMax(p.population, p.sample, p.marked); ++k) {
    mean += static_cast<double>(k) *
            hypergeometric::Pmf(p.population, p.sample, p.marked, k);
  }
  EXPECT_NEAR(mean, hypergeometric::Mean(p.population, p.sample, p.marked), 1e-8);
}

TEST_P(HypergeometricSweep, VarianceMatchesFormula) {
  const auto p = GetParam();
  const double mean = hypergeometric::Mean(p.population, p.sample, p.marked);
  double var = 0.0;
  for (int64_t k = hypergeometric::SupportMin(p.population, p.sample, p.marked);
       k <= hypergeometric::SupportMax(p.population, p.sample, p.marked); ++k) {
    const double d = static_cast<double>(k) - mean;
    var += d * d * hypergeometric::Pmf(p.population, p.sample, p.marked, k);
  }
  EXPECT_NEAR(var, hypergeometric::Variance(p.population, p.sample, p.marked), 1e-7);
}

TEST_P(HypergeometricSweep, SampleMarkedSymmetry) {
  // Hyper(D, S, g, k) == Hyper(D, g, S, k): drawing S and marking g is
  // symmetric.
  const auto p = GetParam();
  for (int64_t k = 0; k <= std::min(p.sample, p.marked); ++k) {
    EXPECT_NEAR(hypergeometric::Pmf(p.population, p.sample, p.marked, k),
                hypergeometric::Pmf(p.population, p.marked, p.sample, k), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, HypergeometricSweep,
                         ::testing::Values(HyperParams{10, 3, 4},
                                           HyperParams{50, 25, 10},
                                           HyperParams{100, 99, 3},
                                           HyperParams{500, 100, 250},
                                           HyperParams{30, 30, 12}));

TEST(HypergeometricTest, FullSampleIsDeterministic) {
  // Sampling the entire population sees every marked item.
  EXPECT_NEAR(hypergeometric::Pmf(20, 20, 7, 7), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(hypergeometric::Pmf(20, 20, 7, 6), 0.0);
}

// --------------------------------------------------------------------------
// Power law
// --------------------------------------------------------------------------

TEST(PowerLawTest, PmfNormalized) {
  const PowerLaw law(1.7, 100);
  double sum = 0.0;
  for (int64_t k = 1; k <= 100; ++k) sum += law.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PowerLawTest, PmfMonotoneDecreasing) {
  const PowerLaw law(2.0, 50);
  for (int64_t k = 1; k < 50; ++k) {
    EXPECT_GT(law.Pmf(k), law.Pmf(k + 1));
  }
}

TEST(PowerLawTest, PmfOutsideSupportZero) {
  const PowerLaw law(2.0, 50);
  EXPECT_DOUBLE_EQ(law.Pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(law.Pmf(51), 0.0);
  EXPECT_TRUE(std::isinf(law.LogPmf(0)));
}

TEST(PowerLawTest, CdfEndpoints) {
  const PowerLaw law(1.5, 30);
  EXPECT_DOUBLE_EQ(law.Cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(law.Cdf(30), 1.0);
  EXPECT_NEAR(law.Cdf(1), law.Pmf(1), 1e-12);
}

TEST(PowerLawTest, MeanMatchesDirectSum) {
  const PowerLaw law(1.9, 200);
  double mean = 0.0;
  for (int64_t k = 1; k <= 200; ++k) mean += static_cast<double>(k) * law.Pmf(k);
  EXPECT_NEAR(law.Mean(), mean, 1e-9);
}

TEST(PowerLawTest, SampleMatchesPmf) {
  const PowerLaw law(1.6, 20);
  Rng rng(99);
  std::vector<int64_t> counts(21, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const int64_t s = law.Sample(&rng);
    ASSERT_GE(s, 1);
    ASSERT_LE(s, 20);
    ++counts[static_cast<size_t>(s)];
  }
  for (int64_t k = 1; k <= 20; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(k)]) / n, law.Pmf(k),
                0.01)
        << "k=" << k;
  }
}

TEST(PowerLawTest, SampleManyCount) {
  const PowerLaw law(2.0, 10);
  Rng rng(5);
  EXPECT_EQ(law.SampleMany(37, &rng).size(), 37u);
}

class PowerLawFitSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawFitSweep, MleRecoversExponent) {
  const double alpha = GetParam();
  const PowerLaw law(alpha, 300);
  Rng rng(static_cast<uint64_t>(alpha * 1000));
  const std::vector<int64_t> samples = law.SampleMany(20000, &rng);
  const auto fit = FitPowerLawExponent(samples, 300);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value(), alpha, 0.05) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawFitSweep,
                         ::testing::Values(0.8, 1.2, 1.6, 2.0, 2.5, 3.0));

TEST(PowerLawTest, FitRejectsEmptyAndOutOfRange) {
  EXPECT_FALSE(FitPowerLawExponent({}, 10).ok());
  EXPECT_FALSE(FitPowerLawExponent({0}, 10).ok());
  EXPECT_FALSE(FitPowerLawExponent({11}, 10).ok());
}

TEST(PowerLawTest, LogLikelihoodPrefersTrueExponent) {
  const PowerLaw law(1.5, 100);
  Rng rng(123);
  const std::vector<int64_t> samples = law.SampleMany(5000, &rng);
  const double ll_true = PowerLawLogLikelihood(samples, 1.5, 100);
  EXPECT_GT(ll_true, PowerLawLogLikelihood(samples, 0.5, 100));
  EXPECT_GT(ll_true, PowerLawLogLikelihood(samples, 3.0, 100));
}

// --------------------------------------------------------------------------
// DiscreteDistribution
// --------------------------------------------------------------------------

TEST(DiscreteTest, FromWeightsNormalizes) {
  auto d = DiscreteDistribution::FromWeights({1.0, 3.0});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(d->Pmf(1), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(d->Pmf(2), 0.0);
  EXPECT_DOUBLE_EQ(d->Pmf(-1), 0.0);
}

TEST(DiscreteTest, FromWeightsRejectsInvalid) {
  EXPECT_FALSE(DiscreteDistribution::FromWeights({}).ok());
  EXPECT_FALSE(DiscreteDistribution::FromWeights({0.0, 0.0}).ok());
  EXPECT_FALSE(DiscreteDistribution::FromWeights({1.0, -0.5}).ok());
}

TEST(DiscreteTest, FromSamplesBuildsEmpiricalPmf) {
  auto d = DiscreteDistribution::FromSamples({0, 1, 1, 3});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(d->Pmf(1), 0.5, 1e-12);
  EXPECT_NEAR(d->Pmf(2), 0.0, 1e-12);
  EXPECT_NEAR(d->Pmf(3), 0.25, 1e-12);
  EXPECT_EQ(d->max_value(), 3);
}

TEST(DiscreteTest, FromSamplesRejectsNegative) {
  EXPECT_FALSE(DiscreteDistribution::FromSamples({1, -2}).ok());
  EXPECT_FALSE(DiscreteDistribution::FromSamples({}).ok());
}

TEST(DiscreteTest, MeanAndVariance) {
  auto d = DiscreteDistribution::FromWeights({0.0, 0.5, 0.5});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->Mean(), 1.5, 1e-12);
  EXPECT_NEAR(d->Variance(), 0.25, 1e-12);
}

TEST(DiscreteTest, SampleMatchesPmf) {
  auto d = DiscreteDistribution::FromWeights({0.2, 0.3, 0.5});
  ASSERT_TRUE(d.ok());
  Rng rng(77);
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(d->Sample(&rng))];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.5, 0.01);
}

// --------------------------------------------------------------------------
// Generating functions
// --------------------------------------------------------------------------

TEST(GeneratingFunctionTest, DefaultIsUnitMassAtZero) {
  GeneratingFunction f;
  EXPECT_DOUBLE_EQ(f.Evaluate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.Mean(), 0.0);
}

TEST(GeneratingFunctionTest, FromPmfValidates) {
  EXPECT_TRUE(GeneratingFunction::FromPmf({0.5, 0.5}).ok());
  EXPECT_FALSE(GeneratingFunction::FromPmf({}).ok());
  EXPECT_FALSE(GeneratingFunction::FromPmf({0.9}).ok());
  EXPECT_FALSE(GeneratingFunction::FromPmf({1.5, -0.5}).ok());
}

TEST(GeneratingFunctionTest, EvaluateIsPolynomial) {
  auto f = GeneratingFunction::FromPmf({0.25, 0.25, 0.5});
  ASSERT_TRUE(f.ok());
  // F(x) = 0.25 + 0.25 x + 0.5 x^2
  EXPECT_NEAR(f->Evaluate(0.0), 0.25, 1e-12);
  EXPECT_NEAR(f->Evaluate(1.0), 1.0, 1e-12);
  EXPECT_NEAR(f->Evaluate(0.5), 0.25 + 0.125 + 0.125, 1e-12);
}

TEST(GeneratingFunctionTest, MomentsProperty) {
  auto f = GeneratingFunction::FromPmf({0.1, 0.2, 0.3, 0.4});
  ASSERT_TRUE(f.ok());
  const double mean = 0.2 + 2 * 0.3 + 3 * 0.4;
  EXPECT_NEAR(f->Mean(), mean, 1e-12);
  const double ex2 = 0.2 + 4 * 0.3 + 9 * 0.4;
  EXPECT_NEAR(f->Variance(), ex2 - mean * mean, 1e-12);
}

TEST(GeneratingFunctionTest, PointMass) {
  const GeneratingFunction f = GeneratingFunction::PointMass(3);
  EXPECT_DOUBLE_EQ(f.Mean(), 3.0);
  EXPECT_NEAR(f.Variance(), 0.0, 1e-12);
  EXPECT_NEAR(f.Evaluate(0.5), 0.125, 1e-12);
}

TEST(GeneratingFunctionTest, EdgeBiasedMatchesSizeBiasing) {
  // p = (0, 0.5, 0, 0.5) over degrees {0,1,2,3}: edge-biased puts mass
  // k p_k / mean on degree k.
  auto f = GeneratingFunction::FromPmf({0.0, 0.5, 0.0, 0.5});
  ASSERT_TRUE(f.ok());
  auto h = f->EdgeBiased();
  ASSERT_TRUE(h.ok());
  const double mean = 0.5 + 1.5;
  EXPECT_NEAR(h->coefficients()[1], 0.5 / mean, 1e-12);
  EXPECT_NEAR(h->coefficients()[3], 1.5 / mean, 1e-12);
  EXPECT_NEAR(h->Evaluate(1.0), 1.0, 1e-12);
}

TEST(GeneratingFunctionTest, EdgeBiasedFailsOnZeroMean) {
  auto f = GeneratingFunction::FromPmf({1.0});
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->EdgeBiased().ok());
}

TEST(GeneratingFunctionTest, PowerPropertyMean) {
  // Sum of n i.i.d. variables: mean multiplies by n.
  auto f = GeneratingFunction::FromPmf({0.3, 0.7});
  ASSERT_TRUE(f.ok());
  const GeneratingFunction f5 = f->Power(5, 64);
  EXPECT_NEAR(f5.Mean(), 5 * 0.7, 1e-9);
  EXPECT_NEAR(f5.Evaluate(1.0), 1.0, 1e-9);
}

TEST(GeneratingFunctionTest, PowerMatchesExplicitBinomial) {
  // (q + p x)^n is the Binomial(n, p) PGF.
  auto f = GeneratingFunction::FromPmf({0.6, 0.4});
  ASSERT_TRUE(f.ok());
  const GeneratingFunction f4 = f->Power(4, 16);
  for (int64_t k = 0; k <= 4; ++k) {
    EXPECT_NEAR(f4.coefficients()[static_cast<size_t>(k)], binomial::Pmf(4, k, 0.4),
                1e-12);
  }
}

TEST(GeneratingFunctionTest, PowerZeroIsOne) {
  auto f = GeneratingFunction::FromPmf({0.5, 0.5});
  ASSERT_TRUE(f.ok());
  const GeneratingFunction f0 = f->Power(0, 8);
  EXPECT_NEAR(f0.Evaluate(1.0), 1.0, 1e-12);
  EXPECT_NEAR(f0.Mean(), 0.0, 1e-12);
}

TEST(GeneratingFunctionTest, CompositionPropertyMean) {
  // F(G(x)): mean is F'(1) * G'(1) (sum of F-many i.i.d. G variables).
  auto f = GeneratingFunction::FromPmf({0.2, 0.5, 0.3});
  auto g = GeneratingFunction::FromPmf({0.1, 0.6, 0.3});
  ASSERT_TRUE(f.ok() && g.ok());
  const GeneratingFunction fg = f->Compose(*g, 64);
  EXPECT_NEAR(fg.Mean(), f->Mean() * g->Mean(), 1e-9);
  EXPECT_NEAR(fg.Evaluate(1.0), 1.0, 1e-9);
  EXPECT_NEAR(ComposedMean(*f, *g), f->Mean() * g->Mean(), 1e-12);
}

TEST(GeneratingFunctionTest, CompositionExplicitCoefficients) {
  // F(x) = x^2 composed with G: coefficients of G^2.
  const GeneratingFunction f = GeneratingFunction::PointMass(2);
  auto g = GeneratingFunction::FromPmf({0.5, 0.5});
  ASSERT_TRUE(g.ok());
  const GeneratingFunction fg = f.Compose(*g, 16);
  EXPECT_NEAR(fg.coefficients()[0], 0.25, 1e-12);
  EXPECT_NEAR(fg.coefficients()[1], 0.5, 1e-12);
  EXPECT_NEAR(fg.coefficients()[2], 0.25, 1e-12);
}

TEST(GeneratingFunctionTest, TruncationTracksLostMass) {
  auto f = GeneratingFunction::FromPmf({0.5, 0.5});
  ASSERT_TRUE(f.ok());
  // (0.5 + 0.5x)^8 truncated to degree 2 loses everything above x^2.
  const GeneratingFunction f8 = f->Power(8, 2);
  EXPECT_GT(f8.truncated_mass(), 0.0);
  double kept = 0.0;
  for (double c : f8.coefficients()) kept += c;
  EXPECT_LT(kept, 1.0);
}

TEST(GeneratingFunctionTest, VarianceOfBinomialPgf) {
  auto f = GeneratingFunction::FromPmf({0.7, 0.3});
  ASSERT_TRUE(f.ok());
  const GeneratingFunction f10 = f->Power(10, 16);
  EXPECT_NEAR(f10.Variance(), 10 * 0.3 * 0.7, 1e-9);
}

}  // namespace
}  // namespace iejoin
