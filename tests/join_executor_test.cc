// Tests for the three join algorithms (IDJN, OIJN, ZGJN): execution
// semantics, stopping rules, cost accounting, and trajectory invariants.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "harness/workbench.h"
#include "join/join_executor.h"

namespace iejoin {
namespace {

class JoinExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static JoinPlanSpec IdjnScanPlan() {
    JoinPlanSpec plan;
    plan.algorithm = JoinAlgorithmKind::kIndependent;
    plan.theta1 = 0.4;
    plan.theta2 = 0.4;
    plan.retrieval1 = RetrievalStrategyKind::kScan;
    plan.retrieval2 = RetrievalStrategyKind::kScan;
    return plan;
  }

  static JoinExecutionResult RunPlan(const JoinPlanSpec& plan,
                                     JoinExecutionOptions options) {
    auto executor = CreateJoinExecutor(plan, bench().resources());
    EXPECT_TRUE(executor.ok()) << executor.status().ToString();
    if (plan.algorithm == JoinAlgorithmKind::kZigZag &&
        options.seed_values.empty()) {
      options.seed_values = bench().ZgjnSeeds(3);
    }
    auto result = (*executor)->Run(options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result.value());
  }

  static Workbench* bench_;
};

Workbench* JoinExecutorTest::bench_ = nullptr;

// --------------------------------------------------------------------------
// Plan descriptions
// --------------------------------------------------------------------------

TEST(JoinTypesTest, AlgorithmNames) {
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithmKind::kIndependent), "IDJN");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithmKind::kOuterInner), "OIJN");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithmKind::kZigZag), "ZGJN");
}

TEST(JoinTypesTest, DescribeMentionsComponents) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.retrieval1 = RetrievalStrategyKind::kFilteredScan;
  plan.retrieval2 = RetrievalStrategyKind::kAutomaticQueryGeneration;
  const std::string desc = plan.Describe();
  EXPECT_NE(desc.find("IDJN"), std::string::npos);
  EXPECT_NE(desc.find("FS"), std::string::npos);
  EXPECT_NE(desc.find("AQG"), std::string::npos);
}

TEST(JoinTypesTest, RequirementMetBy) {
  QualityRequirement req;
  req.min_good_tuples = 10;
  req.max_bad_tuples = 5;
  EXPECT_TRUE(req.MetBy(10, 5));
  EXPECT_TRUE(req.MetBy(11, 0));
  EXPECT_FALSE(req.MetBy(9, 0));
  EXPECT_FALSE(req.MetBy(10, 6));
}

// --------------------------------------------------------------------------
// IDJN
// --------------------------------------------------------------------------

TEST_F(JoinExecutorTest, IdjnExhaustionProcessesEverything) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(IdjnScanPlan(), options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_EQ(result.final_point.docs_processed1, bench().database1().size());
  EXPECT_EQ(result.final_point.docs_processed2, bench().database2().size());
  EXPECT_GT(result.final_point.good_join_tuples, 0);
  EXPECT_GT(result.final_point.bad_join_tuples, 0);
}

TEST_F(JoinExecutorTest, IdjnDeterministicAcrossRuns) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult a = RunPlan(IdjnScanPlan(), options);
  const JoinExecutionResult b = RunPlan(IdjnScanPlan(), options);
  EXPECT_EQ(a.final_point.good_join_tuples, b.final_point.good_join_tuples);
  EXPECT_EQ(a.final_point.bad_join_tuples, b.final_point.bad_join_tuples);
  EXPECT_DOUBLE_EQ(a.final_point.seconds, b.final_point.seconds);
}

TEST_F(JoinExecutorTest, IdjnOracleStopMeetsRequirement) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement.min_good_tuples = 5;
  options.requirement.max_bad_tuples = 1000000;
  const JoinExecutionResult result = RunPlan(IdjnScanPlan(), options);
  EXPECT_TRUE(result.requirement_met);
  EXPECT_GE(result.final_point.good_join_tuples, 5);
  // It stopped early, well before exhaustion.
  EXPECT_LT(result.final_point.docs_processed1, bench().database1().size());
}

TEST_F(JoinExecutorTest, IdjnOracleStopOnBadOverflow) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement.min_good_tuples = 1000000;  // unreachable
  options.requirement.max_bad_tuples = 10;
  const JoinExecutionResult result = RunPlan(IdjnScanPlan(), options);
  EXPECT_FALSE(result.requirement_met);
  EXPECT_GT(result.final_point.bad_join_tuples, 10);
  EXPECT_FALSE(result.exhausted);
}

TEST_F(JoinExecutorTest, IdjnTimeMatchesCostModel) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(IdjnScanPlan(), options);
  const CostModel& costs = bench().config().costs;
  const double expected =
      static_cast<double>(result.final_point.docs_retrieved1 +
                          result.final_point.docs_retrieved2) *
          costs.retrieve_seconds +
      static_cast<double>(result.final_point.docs_processed1 +
                          result.final_point.docs_processed2) *
          costs.extract_seconds;
  EXPECT_NEAR(result.final_point.seconds, expected, 1e-6);
}

TEST_F(JoinExecutorTest, IdjnRectangleRatioAdvancesSidesUnevenly) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement.min_good_tuples = 10;
  options.docs_per_round1 = 4;
  options.docs_per_round2 = 1;
  const JoinExecutionResult result = RunPlan(IdjnScanPlan(), options);
  EXPECT_GT(result.final_point.docs_processed1,
            2 * result.final_point.docs_processed2);
}

TEST_F(JoinExecutorTest, IdjnCallbackStops) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kCallback;
  int calls = 0;
  options.stop_callback = [&calls](const TrajectoryPoint& p, const JoinState&) {
    ++calls;
    return p.docs_processed1 + p.docs_processed2 >= 50;
  };
  const JoinExecutionResult result = RunPlan(IdjnScanPlan(), options);
  EXPECT_GT(calls, 0);
  EXPECT_GE(result.final_point.docs_processed1 + result.final_point.docs_processed2,
            50);
  EXPECT_LE(result.final_point.docs_processed1 + result.final_point.docs_processed2,
            52);
}

TEST_F(JoinExecutorTest, CallbackRuleRequiresCallback) {
  auto executor = CreateJoinExecutor(IdjnScanPlan(), bench().resources());
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kCallback;
  EXPECT_FALSE((*executor)->Run(options).ok());
}

TEST_F(JoinExecutorTest, ExecutorsAreSingleUse) {
  auto executor = CreateJoinExecutor(IdjnScanPlan(), bench().resources());
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement.min_good_tuples = 1;
  ASSERT_TRUE((*executor)->Run(options).ok());
  EXPECT_FALSE((*executor)->Run(options).ok());
}

TEST_F(JoinExecutorTest, TrajectoryIsMonotone) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  options.snapshot_every_docs = 8;
  const JoinExecutionResult result = RunPlan(IdjnScanPlan(), options);
  ASSERT_GT(result.trajectory.size(), 3u);
  for (size_t i = 1; i < result.trajectory.size(); ++i) {
    const TrajectoryPoint& prev = result.trajectory[i - 1];
    const TrajectoryPoint& cur = result.trajectory[i];
    EXPECT_GE(cur.docs_processed1, prev.docs_processed1);
    EXPECT_GE(cur.docs_processed2, prev.docs_processed2);
    EXPECT_GE(cur.good_join_tuples, prev.good_join_tuples);
    EXPECT_GE(cur.bad_join_tuples, prev.bad_join_tuples);
    EXPECT_GE(cur.seconds, prev.seconds);
  }
}

TEST_F(JoinExecutorTest, InvalidOptionsRejected) {
  auto executor = CreateJoinExecutor(IdjnScanPlan(), bench().resources());
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;
  options.snapshot_every_docs = 0;
  EXPECT_FALSE((*executor)->Run(options).ok());

  auto executor2 = CreateJoinExecutor(IdjnScanPlan(), bench().resources());
  ASSERT_TRUE(executor2.ok());
  JoinExecutionOptions options2;
  options2.docs_per_round1 = 0;
  EXPECT_FALSE((*executor2)->Run(options2).ok());
}

// --------------------------------------------------------------------------
// OIJN
// --------------------------------------------------------------------------

JoinPlanSpec OijnPlan(bool outer_is_r1 = true) {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kOuterInner;
  plan.theta1 = 0.4;
  plan.theta2 = 0.4;
  plan.outer_is_relation1 = outer_is_r1;
  plan.retrieval1 = RetrievalStrategyKind::kScan;
  plan.retrieval2 = RetrievalStrategyKind::kScan;
  return plan;
}

TEST_F(JoinExecutorTest, OijnScansOuterQueriesInner) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(OijnPlan(), options);
  EXPECT_TRUE(result.exhausted);
  // Outer side fully scanned, no queries on it.
  EXPECT_EQ(result.final_point.docs_processed1, bench().database1().size());
  EXPECT_EQ(result.final_point.queries1, 0);
  // Inner side driven purely by queries; reaches only part of the database.
  EXPECT_GT(result.final_point.queries2, 0);
  EXPECT_LT(result.final_point.docs_processed2, bench().database2().size());
}

TEST_F(JoinExecutorTest, OijnProbesOncePerDistinctValue) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(OijnPlan(), options);
  // Queries == distinct join values extracted on the outer side.
  EXPECT_EQ(result.final_point.queries2,
            static_cast<int64_t>(result.state.value_counts(0).size()));
}

TEST_F(JoinExecutorTest, OijnOuterCanBeRelation2) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(OijnPlan(/*outer_is_r1=*/false), options);
  EXPECT_EQ(result.final_point.docs_processed2, bench().database2().size());
  EXPECT_GT(result.final_point.queries1, 0);
  EXPECT_EQ(result.final_point.queries2, 0);
}

TEST_F(JoinExecutorTest, OijnFindsFewerBadTuplesThanIdjnAtSameGood) {
  // OIJN focuses inner effort on joining values; compare compositions at
  // the same good-tuple milestone.
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kOracleQuality;
  options.requirement.min_good_tuples = 20;
  const JoinExecutionResult idjn = RunPlan(IdjnScanPlan(), options);
  const JoinExecutionResult oijn = RunPlan(OijnPlan(), options);
  ASSERT_TRUE(idjn.final_point.good_join_tuples >= 20);
  ASSERT_TRUE(oijn.final_point.good_join_tuples >= 20);
  // OIJN reaches the milestone processing far fewer documents overall.
  EXPECT_LT(oijn.final_point.docs_processed1 + oijn.final_point.docs_processed2,
            idjn.final_point.docs_processed1 + idjn.final_point.docs_processed2);
}

// --------------------------------------------------------------------------
// ZGJN
// --------------------------------------------------------------------------

JoinPlanSpec ZgjnPlan() {
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kZigZag;
  plan.theta1 = 0.4;
  plan.theta2 = 0.4;
  return plan;
}

TEST_F(JoinExecutorTest, ZgjnRequiresSeeds) {
  auto executor = CreateJoinExecutor(ZgjnPlan(), bench().resources());
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;  // no seeds
  EXPECT_FALSE((*executor)->Run(options).ok());
}

TEST_F(JoinExecutorTest, ZgjnSpreadsFromSeeds) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(ZgjnPlan(), options);
  EXPECT_TRUE(result.exhausted);
  EXPECT_GT(result.final_point.queries1, 0);
  EXPECT_GT(result.final_point.queries2, 0);
  EXPECT_GT(result.final_point.docs_processed1, 0);
  EXPECT_GT(result.final_point.docs_processed2, 0);
  EXPECT_GT(result.final_point.good_join_tuples, 0);
}

TEST_F(JoinExecutorTest, ZgjnIsBoundedByQueryReach) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(ZgjnPlan(), options);
  // The query interface limits the reachable space (gray circles of
  // Figure 6): ZGJN cannot touch the whole database.
  EXPECT_LT(result.final_point.docs_processed1, bench().database1().size());
  EXPECT_LT(result.final_point.docs_processed2, bench().database2().size());
}

TEST_F(JoinExecutorTest, ZgjnQueriesAreDeduplicated) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  // Duplicate seeds must collapse.
  auto seeds = bench().ZgjnSeeds(2);
  seeds.push_back(seeds[0]);
  seeds.push_back(seeds[1]);
  options.seed_values = seeds;
  const JoinExecutionResult result = RunPlan(ZgjnPlan(), options);
  // Queries to D1 bounded by distinct values ever enqueued; in particular
  // the duplicated seeds must not add queries.
  JoinExecutionOptions options2;
  options2.stop_rule = StopRule::kExhaustion;
  options2.seed_values = bench().ZgjnSeeds(2);
  const JoinExecutionResult result2 = RunPlan(ZgjnPlan(), options2);
  EXPECT_EQ(result.final_point.queries1, result2.final_point.queries1);
}

TEST_F(JoinExecutorTest, ZgjnChargesQueriesAndDocs) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult result = RunPlan(ZgjnPlan(), options);
  const CostModel& costs = bench().config().costs;
  const double expected =
      static_cast<double>(result.final_point.docs_retrieved1 +
                          result.final_point.docs_retrieved2) *
          costs.retrieve_seconds +
      static_cast<double>(result.final_point.docs_processed1 +
                          result.final_point.docs_processed2) *
          costs.extract_seconds +
      static_cast<double>(result.final_point.queries1 +
                          result.final_point.queries2) *
          costs.query_seconds;
  EXPECT_NEAR(result.final_point.seconds, expected, 1e-6);
}

// --------------------------------------------------------------------------
// ZGJN focusing extensions (paper future work)
// --------------------------------------------------------------------------

TEST_F(JoinExecutorTest, ZgjnConfidencePriorityKeepsReachChangesOrder) {
  // Priority ordering changes *when* values are queried, not *which* are
  // reachable: the endpoint matches plain ZGJN while the trajectory
  // differs. (Its early-quality benefit is demonstrated at paper scale by
  // bench/ablation_zgjn_focus; it is not guaranteed on tiny corpora.)
  JoinExecutionOptions plain;
  plain.stop_rule = StopRule::kExhaustion;
  plain.snapshot_every_docs = 4;
  JoinExecutionOptions focused = plain;
  focused.zgjn_confidence_priority = true;
  const JoinExecutionResult r_plain = RunPlan(ZgjnPlan(), plain);
  const JoinExecutionResult r_focused = RunPlan(ZgjnPlan(), focused);
  EXPECT_EQ(r_plain.final_point.good_join_tuples,
            r_focused.final_point.good_join_tuples);
  EXPECT_EQ(r_plain.final_point.bad_join_tuples,
            r_focused.final_point.bad_join_tuples);
  EXPECT_EQ(r_plain.final_point.queries1 + r_plain.final_point.queries2,
            r_focused.final_point.queries1 + r_focused.final_point.queries2);
  // The traversal order differs somewhere along the trajectory.
  bool differs = r_plain.trajectory.size() != r_focused.trajectory.size();
  for (size_t i = 0; !differs && i < r_plain.trajectory.size(); ++i) {
    differs = r_plain.trajectory[i].good_join_tuples !=
              r_focused.trajectory[i].good_join_tuples;
  }
  EXPECT_TRUE(differs);
}

TEST_F(JoinExecutorTest, ZgjnConfidenceGatePrunesQueries) {
  JoinExecutionOptions plain;
  plain.stop_rule = StopRule::kExhaustion;
  JoinExecutionOptions gated = plain;
  gated.zgjn_min_confidence = 0.7;
  const JoinExecutionResult r_plain = RunPlan(ZgjnPlan(), plain);
  const JoinExecutionResult r_gated = RunPlan(ZgjnPlan(), gated);
  EXPECT_LT(r_gated.final_point.queries1 + r_gated.final_point.queries2,
            r_plain.final_point.queries1 + r_plain.final_point.queries2);
  EXPECT_LE(r_gated.final_point.good_join_tuples,
            r_plain.final_point.good_join_tuples);
}

TEST_F(JoinExecutorTest, ZgjnImpossibleGateStopsAtSeeds) {
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  options.zgjn_min_confidence = 1.1;  // nothing clears this
  const JoinExecutionResult result = RunPlan(ZgjnPlan(), options);
  // Only the seed queries run; no derived queries are enqueued.
  EXPECT_EQ(result.final_point.queries1, 3);
  EXPECT_EQ(result.final_point.queries2, 0);
}

TEST_F(JoinExecutorTest, ZgjnClassifierFilterReducesProcessingAndBadTuples) {
  JoinExecutionOptions plain;
  plain.stop_rule = StopRule::kExhaustion;
  JoinExecutionOptions filtered = plain;
  filtered.zgjn_classifier_filter = true;
  const JoinExecutionResult r_plain = RunPlan(ZgjnPlan(), plain);
  const JoinExecutionResult r_filtered = RunPlan(ZgjnPlan(), filtered);
  EXPECT_LT(r_filtered.final_point.docs_processed1 +
                r_filtered.final_point.docs_processed2,
            r_plain.final_point.docs_processed1 +
                r_plain.final_point.docs_processed2);
  EXPECT_LT(r_filtered.final_point.bad_join_tuples,
            r_plain.final_point.bad_join_tuples);
  // Output precision improves.
  const double p_plain =
      static_cast<double>(r_plain.final_point.good_join_tuples) /
      static_cast<double>(r_plain.final_point.good_join_tuples +
                          r_plain.final_point.bad_join_tuples);
  const double p_filtered =
      static_cast<double>(r_filtered.final_point.good_join_tuples) /
      static_cast<double>(r_filtered.final_point.good_join_tuples +
                          r_filtered.final_point.bad_join_tuples);
  EXPECT_GT(p_filtered, p_plain);
}

TEST_F(JoinExecutorTest, ZgjnFilterRequiresClassifiers) {
  JoinResources resources = bench().resources();
  resources.classifier1 = nullptr;
  resources.classifier2 = nullptr;
  auto executor = CreateJoinExecutor(ZgjnPlan(), resources);
  ASSERT_TRUE(executor.ok());
  JoinExecutionOptions options;
  options.seed_values = bench().ZgjnSeeds(3);
  options.zgjn_classifier_filter = true;
  EXPECT_FALSE((*executor)->Run(options).ok());
}

// --------------------------------------------------------------------------
// Factory validation
// --------------------------------------------------------------------------

TEST_F(JoinExecutorTest, FactoryRejectsInvalidThetas) {
  JoinPlanSpec plan = IdjnScanPlan();
  plan.theta1 = -0.1;
  EXPECT_FALSE(CreateJoinExecutor(plan, bench().resources()).ok());
  plan = IdjnScanPlan();
  plan.theta2 = 1.1;
  EXPECT_FALSE(CreateJoinExecutor(plan, bench().resources()).ok());
}

TEST_F(JoinExecutorTest, FactoryRejectsIncompleteResources) {
  JoinResources resources = bench().resources();
  resources.database1 = nullptr;
  EXPECT_FALSE(CreateJoinExecutor(IdjnScanPlan(), resources).ok());
  resources = bench().resources();
  resources.extractor2 = nullptr;
  EXPECT_FALSE(CreateJoinExecutor(IdjnScanPlan(), resources).ok());
}

TEST_F(JoinExecutorTest, FactoryHonorsPlanKnobs) {
  JoinPlanSpec strict = IdjnScanPlan();
  strict.theta1 = 0.9;
  strict.theta2 = 0.9;
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  const JoinExecutionResult loose = RunPlan(IdjnScanPlan(), options);
  const JoinExecutionResult tight = RunPlan(strict, options);
  // Stricter knobs extract fewer occurrences and fewer bad join tuples.
  EXPECT_LT(tight.final_point.extracted1, loose.final_point.extracted1);
  EXPECT_LT(tight.final_point.bad_join_tuples, loose.final_point.bad_join_tuples);
}

}  // namespace
}  // namespace iejoin
