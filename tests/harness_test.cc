// Tests for the evaluation harness (Workbench) and a property sweep over
// the whole plan space: every enumerable plan must execute cleanly with
// consistent accounting on a small scenario.

#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "harness/workbench.h"
#include "optimizer/plan_space.h"
#include "textdb/corpus_io.h"

namespace iejoin {
namespace {

ScenarioSpec TinySpec() {
  ScenarioSpec spec = ScenarioSpec::Small();
  spec.relation1.num_documents = 500;
  spec.relation2.num_documents = 500;
  return spec;
}

class HarnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = TinySpec();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static Workbench* bench_;
};

Workbench* HarnessTest::bench_ = nullptr;

TEST_F(HarnessTest, ScenariosAreDistinctDraws) {
  // Training, validation, and evaluation corpora must differ (different
  // seeds) while sharing one vocabulary.
  const auto& eval = bench().scenario();
  const auto& train = bench().training_scenario();
  const auto& val = bench().validation_scenario();
  EXPECT_NE(eval.corpus1.get(), train.corpus1.get());
  bool train_differs = false;
  bool val_differs = false;
  for (int64_t d = 0; d < eval.corpus1->size(); ++d) {
    const auto& e = eval.corpus1->document(static_cast<DocId>(d)).tokens;
    if (e != train.corpus1->document(static_cast<DocId>(d)).tokens) {
      train_differs = true;
    }
    if (e != val.corpus1->document(static_cast<DocId>(d)).tokens) {
      val_differs = true;
    }
    if (train_differs && val_differs) break;
  }
  EXPECT_TRUE(train_differs);
  EXPECT_TRUE(val_differs);
}

TEST_F(HarnessTest, ResourcesAreFullyWired) {
  const JoinResources r = bench().resources();
  EXPECT_NE(r.database1, nullptr);
  EXPECT_NE(r.database2, nullptr);
  EXPECT_NE(r.extractor1, nullptr);
  EXPECT_NE(r.extractor2, nullptr);
  EXPECT_NE(r.classifier1, nullptr);
  EXPECT_NE(r.classifier2, nullptr);
  ASSERT_NE(r.queries1, nullptr);
  EXPECT_FALSE(r.queries1->empty());
}

TEST_F(HarnessTest, CreateForScenarioReusesLoadedEvaluation) {
  // Save the evaluation scenario, reload it, and build a workbench around
  // it: executions must be identical to the original workbench's.
  const std::string path = ::testing::TempDir() + "/harness_roundtrip.iejoin";
  ASSERT_TRUE(SaveScenario(bench().scenario(), path).ok());
  auto loaded = LoadScenario(path);
  ASSERT_TRUE(loaded.ok());
  WorkbenchConfig config;
  config.scenario = TinySpec();
  auto rebench = Workbench::CreateForScenario(config, std::move(*loaded));
  ASSERT_TRUE(rebench.ok()) << rebench.status().ToString();

  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.4;
  plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  auto e1 = CreateJoinExecutor(plan, bench().resources());
  auto e2 = CreateJoinExecutor(plan, (*rebench)->resources());
  ASSERT_TRUE(e1.ok() && e2.ok());
  auto r1 = (*e1)->Run(options);
  auto r2 = (*e2)->Run(options);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1->final_point.good_join_tuples, r2->final_point.good_join_tuples);
  EXPECT_EQ(r1->final_point.bad_join_tuples, r2->final_point.bad_join_tuples);
  std::remove(path.c_str());
}

TEST_F(HarnessTest, CreateForScenarioRejectsEmptyScenario) {
  WorkbenchConfig config;
  EXPECT_FALSE(Workbench::CreateForScenario(config, JoinScenario{}).ok());
}

// --------------------------------------------------------------------------
// Plan-space sweep: every plan executes with consistent accounting.
// --------------------------------------------------------------------------

class PlanSweepTest : public HarnessTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(PlanSweepTest, PlanExecutesWithConsistentAccounting) {
  const auto plans = EnumeratePlans(PlanEnumerationOptions());
  ASSERT_LT(static_cast<size_t>(GetParam()), plans.size());
  const JoinPlanSpec& plan = plans[static_cast<size_t>(GetParam())];

  auto executor = CreateJoinExecutor(plan, bench().resources());
  ASSERT_TRUE(executor.ok()) << plan.Describe();
  JoinExecutionOptions options;
  options.stop_rule = StopRule::kExhaustion;
  if (plan.algorithm == JoinAlgorithmKind::kZigZag) {
    options.seed_values = bench().ZgjnSeeds(3);
  }
  auto result = (*executor)->Run(options);
  ASSERT_TRUE(result.ok()) << plan.Describe() << ": "
                           << result.status().ToString();
  const TrajectoryPoint& f = result->final_point;

  // Processed docs never exceed retrieved docs or the database size.
  EXPECT_LE(f.docs_processed1, f.docs_retrieved1);
  EXPECT_LE(f.docs_processed2, f.docs_retrieved2);
  EXPECT_LE(f.docs_processed1, bench().database1().size());
  EXPECT_LE(f.docs_processed2, bench().database2().size());
  // Producing docs bounded by processed docs; extractions bounded below by
  // producing docs.
  EXPECT_LE(f.docs_with_extraction1, f.docs_processed1);
  EXPECT_LE(f.docs_with_extraction2, f.docs_processed2);
  EXPECT_GE(f.extracted1, f.docs_with_extraction1);
  EXPECT_GE(f.extracted2, f.docs_with_extraction2);
  // Simulated time is positive iff any work happened, and exhaustion holds.
  EXPECT_GT(f.seconds, 0.0);
  EXPECT_TRUE(result->exhausted);
  // Ground-truth recount: the state's counters match a brute-force join of
  // its per-value counts.
  int64_t good = 0;
  int64_t bad = 0;
  for (const auto& [value, c1] : result->state.value_counts(0)) {
    const auto it = result->state.value_counts(1).find(value);
    if (it == result->state.value_counts(1).end()) continue;
    good += c1.good * it->second.good;
    bad += c1.good * it->second.bad + c1.bad * it->second.total();
  }
  EXPECT_EQ(f.good_join_tuples, good) << plan.Describe();
  EXPECT_EQ(f.bad_join_tuples, bad) << plan.Describe();
}

// Sweep a representative stratified subset of the 64-plan space (all
// algorithms, all strategies, both theta mixes) to keep runtime modest.
INSTANTIATE_TEST_SUITE_P(Stratified, PlanSweepTest,
                         ::testing::Values(0, 3, 7, 10, 13, 15, 16, 19, 25, 31,
                                           32, 38, 44, 47, 48, 54, 60, 63));

}  // namespace
}  // namespace iejoin
