// Tests for the sketch-based join-size bounds (estimation/sketch_bounds)
// and the golden estimation harness (bench/estimation_golden.h), including
// the committed-golden drift gate: every tests/golden/estimation/<shape>.md
// must match a freshly built report within the per-cell tolerances.

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "bench/estimation_golden.h"
#include "estimation/sketch_bounds.h"

namespace iejoin {
namespace {

#ifndef IEJOIN_GOLDEN_DIR
#define IEJOIN_GOLDEN_DIR "tests/golden/estimation"
#endif

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A fully observed sample (inclusion = tp = fp = 1): every database
/// occurrence was extracted, so the sketch sees the exact degree sequences.
RelationObservation FullObservation(std::vector<TokenId> values,
                                    std::vector<int64_t> counts) {
  RelationObservation obs;
  obs.num_documents = 100;
  obs.docs_processed = 100;
  obs.docs_with_extraction = 50;
  obs.values = std::move(values);
  obs.counts = std::move(counts);
  obs.good_inclusion = 1.0;
  obs.bad_inclusion = 1.0;
  obs.tp = 1.0;
  obs.fp = 1.0;
  return obs;
}

TEST(KmvSketchTest, ExactWhileUnsaturated) {
  KmvSketch sketch(64);
  for (TokenId v = 1; v <= 40; ++v) sketch.Add(v);
  for (TokenId v = 1; v <= 40; ++v) sketch.Add(v);  // duplicates ignored
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 40.0);
}

TEST(KmvSketchTest, SaturatedEstimateWithinTolerance) {
  KmvSketch sketch(256);
  const int64_t distinct = 20000;
  for (TokenId v = 1; v <= distinct; ++v) sketch.Add(v);
  const double estimate = sketch.EstimateDistinct();
  EXPECT_GT(estimate, distinct * 0.75);
  EXPECT_LT(estimate, distinct * 1.25);
}

TEST(KmvSketchTest, IntersectionTracksOverlap) {
  KmvSketch a(256);
  KmvSketch b(256);
  // |A| = |B| = 4000, |A ∩ B| = 2000.
  for (TokenId v = 1; v <= 4000; ++v) a.Add(v);
  for (TokenId v = 2001; v <= 6000; ++v) b.Add(v);
  const double inter = KmvSketch::EstimateIntersection(a, b);
  EXPECT_GT(inter, 2000 * 0.6);
  EXPECT_LT(inter, 2000 * 1.4);
}

TEST(DegreeSummaryTest, FullObservationIsNotInflated) {
  const RelationDegreeSummary summary = BuildDegreeSummary(
      FullObservation({1, 2, 3}, {4, 3, 3}), SketchOptions());
  EXPECT_EQ(summary.observed_distinct, 3);
  EXPECT_DOUBLE_EQ(summary.p_lo, 1.0);
  // No singletons -> Chao1 sees no unseen values.
  EXPECT_DOUBLE_EQ(summary.unseen_values, 0.0);
  ASSERT_EQ(summary.inflated_degrees.size(), 3u);
  EXPECT_DOUBLE_EQ(summary.inflated_degrees[0], 4.0);  // descending, s/p = s
}

TEST(DegreeSummaryTest, UnseenEstimateCappedByOccurrenceMass) {
  // Every observed value is a singleton: raw Chao1 would be quadratic in
  // the number of singletons (here 45·44/2 = 990 with no doubletons), but
  // the estimated total occurrence mass only leaves room for
  // observed_mass / p_mid - distinct values.
  std::vector<TokenId> values;
  std::vector<int64_t> counts;
  for (TokenId v = 1; v <= 45; ++v) {
    values.push_back(v);
    counts.push_back(1);
  }
  RelationObservation obs = FullObservation(values, counts);
  obs.good_inclusion = obs.bad_inclusion = 0.5;
  obs.tp = obs.fp = 0.5;  // p_mid = 0.25 -> estimated mass 180
  const RelationDegreeSummary summary = BuildDegreeSummary(obs, SketchOptions());
  EXPECT_LE(summary.unseen_values, 180.0 - 45.0 + 1e-9);
  EXPECT_GT(summary.unseen_values, 0.0);
}

TEST(SketchBoundsTest, FullObservationLowerBoundIsExact) {
  // Shared values {2, 3}: exact join size 3*5 + 3*3 = 24.
  const RelationDegreeSummary s1 = BuildDegreeSummary(
      FullObservation({1, 2, 3}, {4, 3, 3}), SketchOptions());
  const RelationDegreeSummary s2 = BuildDegreeSummary(
      FullObservation({2, 3, 5}, {5, 3, 4}), SketchOptions());
  const JoinSizeBounds bounds = EstimateJoinSizeBounds(s1, s2, SketchOptions());
  EXPECT_DOUBLE_EQ(bounds.lower, 24.0);
  EXPECT_TRUE(bounds.Contains(24.0));
  // Rearrangement pairing of [4,3,3] and [5,4,3] caps any overlap
  // assignment: 4*5 + 3*4 + 3*3 = 41, plus the 10% slack.
  EXPECT_LE(bounds.upper, 41.0 * 1.10 + 1e-9);
  EXPECT_GE(bounds.estimate, bounds.lower);
  EXPECT_LE(bounds.estimate, bounds.upper);
}

TEST(SketchBoundsTest, DisjointSidesHaveZeroLowerBound) {
  const RelationDegreeSummary s1 =
      BuildDegreeSummary(FullObservation({1, 2}, {3, 3}), SketchOptions());
  const RelationDegreeSummary s2 =
      BuildDegreeSummary(FullObservation({8, 9}, {3, 3}), SketchOptions());
  const JoinSizeBounds bounds = EstimateJoinSizeBounds(s1, s2, SketchOptions());
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
}

TEST(CalibrationTest, OverestimateClampedOntoUpperBound) {
  const RelationDegreeSummary s1 = BuildDegreeSummary(
      FullObservation({1, 2, 3}, {4, 3, 3}), SketchOptions());
  const RelationDegreeSummary s2 = BuildDegreeSummary(
      FullObservation({2, 3, 5}, {5, 3, 4}), SketchOptions());

  JoinModelParams params;
  params.coupling = FrequencyCoupling::kIndependent;
  params.num_agg = 1000;
  params.relation1.good_freq.mean = 10.0;
  params.relation2.good_freq.mean = 10.0;
  // Implied size 1000 * 10 * 10 = 100000 >> upper (~45).
  const CalibrationResult result =
      CalibrateJoinEstimate(params, s1, s2, CalibrationOptions());
  EXPECT_TRUE(result.clamped);
  EXPECT_TRUE(result.out_of_bounds);
  EXPECT_GT(result.ratio, 2.0);
  EXPECT_DOUBLE_EQ(result.implied, 100000.0);
  EXPECT_LE(ImpliedJoinSize(result.params), result.bounds.upper * 1.01);
  EXPECT_LT(result.params.num_agg, params.num_agg);
}

TEST(CalibrationTest, InBoundsEstimateIsUntouched) {
  const RelationDegreeSummary s1 = BuildDegreeSummary(
      FullObservation({1, 2, 3}, {4, 3, 3}), SketchOptions());
  const RelationDegreeSummary s2 = BuildDegreeSummary(
      FullObservation({2, 3, 5}, {5, 3, 4}), SketchOptions());
  JoinModelParams params;
  params.num_agg = 3;
  params.relation1.good_freq.mean = 3.0;
  params.relation2.good_freq.mean = 3.0;  // implied 27, inside [24, ~45]
  const CalibrationResult result =
      CalibrateJoinEstimate(params, s1, s2, CalibrationOptions());
  EXPECT_FALSE(result.clamped);
  EXPECT_FALSE(result.out_of_bounds);
  EXPECT_DOUBLE_EQ(result.ratio, 1.0);
  EXPECT_EQ(result.params.num_agg, 3);
}

TEST(GoldenFormatTest, RenderParseRoundTrip) {
  golden::ShapeReport report;
  report.shape = "unit";
  report.overlap_class = "one-to-one";
  report.skew = "flat";
  report.actual_join_size = 42;
  report.mle_implied_size = 40.5;
  report.mle_error_ratio = 1.04;
  report.sketch_lower = 30.0;
  report.sketch_upper = 60.0;
  report.sketch_estimate = 45.0;
  report.bounds_contain_actual = true;
  report.mle_within_bounds = true;
  golden::GoldenCell cell;
  cell.algorithm = "idjn";
  cell.estimator = "mle";
  cell.actual_good = 7;
  cell.actual_bad = 2;
  cell.est_good = 6.5;
  cell.est_bad = 2.5;
  report.cells.push_back(cell);

  const std::string text = golden::RenderGolden(report);
  const golden::ParsedGolden parsed = golden::ParseGolden(text);
  ASSERT_NE(parsed.Find("actual_join_size"), nullptr);
  EXPECT_EQ(*parsed.Find("actual_join_size"), "42");
  ASSERT_NE(parsed.Find("idjn/mle/est_good"), nullptr);
  EXPECT_EQ(*parsed.Find("idjn/mle/est_good"), "6.50");
  ASSERT_NE(parsed.Find("overlap_class"), nullptr);
  EXPECT_EQ(*parsed.Find("overlap_class"), "one-to-one");

  // Identity comparison holds; small drift within tolerance holds; drift
  // beyond the band and exact-field changes fail.
  EXPECT_TRUE(golden::CompareGolden(text, text).empty());
  golden::ShapeReport drifted = report;
  drifted.mle_implied_size = 43.0;  // ~6% off, inside the 10% band
  EXPECT_TRUE(golden::CompareGolden(text, golden::RenderGolden(drifted)).empty());
  drifted.mle_implied_size = 80.0;  // way outside
  EXPECT_FALSE(golden::CompareGolden(text, golden::RenderGolden(drifted)).empty());
  drifted = report;
  drifted.actual_join_size = 43;  // exact field -> any change fails
  EXPECT_FALSE(golden::CompareGolden(text, golden::RenderGolden(drifted)).empty());
  drifted = report;
  drifted.bounds_contain_actual = false;
  EXPECT_FALSE(golden::CompareGolden(text, golden::RenderGolden(drifted)).empty());
}

TEST(GoldenFormatTest, MissingAndExtraFieldsFail) {
  golden::ShapeReport report;
  report.shape = "unit";
  report.overlap_class = "one-to-one";
  report.skew = "flat";
  const std::string text = golden::RenderGolden(report);
  golden::ShapeReport with_cell = report;
  golden::GoldenCell cell;
  cell.algorithm = "idjn";
  cell.estimator = "mle";
  with_cell.cells.push_back(cell);
  // Fresh report grew a cell the golden lacks -> must demand a re-bless.
  EXPECT_FALSE(golden::CompareGolden(text, golden::RenderGolden(with_cell)).empty());
  // Golden has a cell the fresh report lost -> fails too.
  EXPECT_FALSE(golden::CompareGolden(golden::RenderGolden(with_cell), text).empty());
}

/// The drift gate proper: every committed golden must match a freshly
/// built report. Builds each shape's workbench once; ~1s/shape in release.
TEST(GoldenDriftTest, CommittedGoldensMatchFreshReports) {
  const std::vector<bench::EstimationShape> shapes = bench::EstimationShapes();
  ASSERT_GE(shapes.size(), 4u);
  std::set<std::string> overlap_classes;
  for (const bench::EstimationShape& shape : shapes) {
    overlap_classes.insert(shape.overlap_class);
    SCOPED_TRACE(shape.name);
    const std::string path =
        std::string(IEJOIN_GOLDEN_DIR) + "/" + shape.name + ".md";
    const std::string committed = ReadFileOrEmpty(path);
    ASSERT_FALSE(committed.empty()) << "missing golden " << path;
    auto report = golden::BuildShapeReport(shape);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::vector<std::string> failures =
        golden::CompareGolden(committed, golden::RenderGolden(*report));
    for (const std::string& failure : failures) ADD_FAILURE() << failure;

    // Headline properties the goldens exist to document: the sketch bounds
    // contain the true join size on every shape, and the many-to-many
    // shape breaks the independence-coupling MLE by over an order of
    // magnitude while the bounds stay calibrated.
    EXPECT_TRUE(report->bounds_contain_actual);
    EXPECT_EQ(report->cells.size(), 6u) << "3 algorithms x 2 estimators";
    if (shape.overlap_class == "many-to-many") {
      EXPECT_GT(report->mle_error_ratio, 10.0);
      EXPECT_FALSE(report->mle_within_bounds);
    }
  }
  EXPECT_EQ(overlap_classes.size(), 4u);
}

}  // namespace
}  // namespace iejoin
