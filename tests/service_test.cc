// Service-mode suite: protocol parsing, admission control and overload
// shedding, per-request SLOs and deadlines, drain semantics, and the
// determinism contract — the same request must produce byte-identical
// responses served alone, repeated against a warm shared cache, or racing
// fifteen copies of itself. Runs unlabeled so the TSan lane covers the
// service's worker handoffs and the shared-cache locking.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/workbench.h"
#include "obs/telemetry.h"
#include "service/join_service.h"
#include "service/service_protocol.h"

namespace iejoin {
namespace service {
namespace {

// ---------------------------------------------------------------------------
// Protocol: ParseServiceRequest / PlanFromRequest
// ---------------------------------------------------------------------------

TEST(ServiceProtocolTest, ParsesFullJoinRequest) {
  auto parsed = ParseServiceRequest(
      R"({"id":"r-1","algorithm":"zgjn","theta1":0.3,"theta2":0.5,)"
      R"("x1":"fs","x2":"aqg","tau_good":25,"tau_bad":4000,)"
      R"("deadline_seconds":90.5,"faults":"extract.error=0.1","seed":42,)"
      R"("metrics":true,"trajectory":true})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ServiceRequest& request = *parsed;
  EXPECT_EQ(request.kind, ServiceRequest::Kind::kJoin);
  EXPECT_EQ(request.id, "r-1");
  EXPECT_EQ(request.algorithm, "zgjn");
  EXPECT_DOUBLE_EQ(request.theta1, 0.3);
  EXPECT_DOUBLE_EQ(request.theta2, 0.5);
  EXPECT_EQ(request.x1, "fs");
  EXPECT_EQ(request.x2, "aqg");
  EXPECT_TRUE(request.has_requirement);
  EXPECT_EQ(request.tau_good, 25);
  EXPECT_EQ(request.tau_bad, 4000);
  EXPECT_DOUBLE_EQ(request.deadline_seconds, 90.5);
  EXPECT_EQ(request.faults, "extract.error=0.1");
  EXPECT_TRUE(request.has_seed);
  EXPECT_EQ(request.seed, 42u);
  EXPECT_TRUE(request.include_metrics);
  EXPECT_TRUE(request.include_trajectory);
}

TEST(ServiceProtocolTest, DefaultsMatchSchema) {
  auto parsed = ParseServiceRequest("{}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, ServiceRequest::Kind::kJoin);
  EXPECT_EQ(parsed->algorithm, "idjn");
  EXPECT_DOUBLE_EQ(parsed->theta1, 0.4);
  EXPECT_EQ(parsed->x1, "sc");
  EXPECT_FALSE(parsed->has_requirement);
  EXPECT_FALSE(parsed->has_seed);
  EXPECT_FALSE(parsed->include_metrics);
}

TEST(ServiceProtocolTest, ParsesIntrospectionKinds) {
  auto stats = ParseServiceRequest(R"({"stats":true})");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->kind, ServiceRequest::Kind::kStats);
  auto health = ParseServiceRequest(R"({"health":true,"id":"h"})");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->kind, ServiceRequest::Kind::kHealth);
  EXPECT_EQ(health->id, "h");
}

TEST(ServiceProtocolTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseServiceRequest("").ok());
  EXPECT_FALSE(ParseServiceRequest("not json").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"x")").ok());        // unterminated
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"x"} extra)").ok());  // trailing
  EXPECT_FALSE(ParseServiceRequest(R"({"frobnicate":1})").ok());  // unknown key
  EXPECT_FALSE(ParseServiceRequest(R"({"theta1":1.5})").ok());    // range
  EXPECT_FALSE(ParseServiceRequest(R"({"theta1":"hi"})").ok());   // type
  EXPECT_FALSE(ParseServiceRequest(R"({"tau_good":-5})").ok());   // sign
  // Doubles past the destination integer range would be UB to cast.
  EXPECT_FALSE(ParseServiceRequest(R"({"tau_good":1e30})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"tau_bad":9.3e18})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"seed":1.9e19})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"seed":1e999})").ok());    // infinity
  EXPECT_FALSE(ParseServiceRequest(R"({"metrics":1})").ok());     // bool field
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"a\u0041"})").ok());  // unsupported \u escape
}

TEST(ServiceProtocolTest, PlanFromRequestMapsAlgorithmsAndStrategies) {
  ServiceRequest request;
  request.algorithm = "oijn";
  request.x1 = "aqg";
  request.x2 = "fs";
  request.theta1 = 0.6;
  auto plan = PlanFromRequest(request);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithmKind::kOuterInner);
  EXPECT_EQ(plan->retrieval1, RetrievalStrategyKind::kAutomaticQueryGeneration);
  EXPECT_EQ(plan->retrieval2, RetrievalStrategyKind::kFilteredScan);
  EXPECT_DOUBLE_EQ(plan->theta1, 0.6);

  request.algorithm = "quantum";
  EXPECT_FALSE(PlanFromRequest(request).ok());
  request.algorithm = "idjn";
  request.x2 = "bm25";
  EXPECT_FALSE(PlanFromRequest(request).ok());
}

// ---------------------------------------------------------------------------
// Service behavior over a shared workbench
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    // Service-mode wiring: no workbench pool (the service's workers are the
    // request drivers) and a shared bounded extraction cache.
    config.threads = 0;
    config.extraction_cache = true;
    config.extraction_cache_bytes = 8 << 20;
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  /// Serves one line and blocks until its response arrives.
  static std::string ServeAndWait(JoinService* svc, const std::string& line) {
    std::mutex mu;
    std::condition_variable cv;
    std::string response;
    bool done = false;
    svc->Serve(line, [&](std::string r) {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(r);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return response;
  }

  static bool Contains(const std::string& text, const std::string& needle) {
    return text.find(needle) != std::string::npos;
  }

  static Workbench* bench_;
};

Workbench* ServiceTest::bench_ = nullptr;

TEST_F(ServiceTest, ServesJoinRequest) {
  ServiceConfig config;
  config.workers = 2;
  JoinService svc(bench_, config);
  const std::string response = ServeAndWait(
      &svc, R"({"id":"j1","algorithm":"idjn","x1":"fs","tau_good":5,)"
            R"("tau_bad":100000})");
  EXPECT_TRUE(Contains(response, "\"id\":\"j1\"")) << response;
  EXPECT_TRUE(Contains(response, "\"status\":\"ok\"")) << response;
  EXPECT_TRUE(Contains(response, "\"requirement_met\":true")) << response;
  EXPECT_TRUE(Contains(response, "\"good_tuples\":")) << response;
  svc.Drain();
  EXPECT_EQ(svc.completed_requests(), 1);
}

TEST_F(ServiceTest, MalformedRequestsRejectedWithoutAdmission) {
  JoinService svc(bench_, ServiceConfig{});
  for (const char* bad :
       {"garbage", R"({"algorithm":"quantum"})", R"({"x1":"bm25"})",
        R"({"faults":"bogus.knob=1"})", R"({"unknown_field":true})"}) {
    const std::string response = ServeAndWait(&svc, bad);
    EXPECT_TRUE(Contains(response, "\"status\":\"invalid\"")) << response;
    EXPECT_TRUE(Contains(response, "\"error\":")) << response;
  }
  // Rejections never consume queue slots or workers.
  EXPECT_EQ(svc.completed_requests(), 0);
  EXPECT_EQ(svc.stats().Snapshot().counters.at("service.rejected"), 5);
  // The service still serves joins afterwards.
  const std::string ok = ServeAndWait(&svc, R"({"tau_good":5})");
  EXPECT_TRUE(Contains(ok, "\"status\":\"ok\"")) << ok;
}

TEST_F(ServiceTest, HealthAndStatsAnswerSynchronously) {
  JoinService svc(bench_, ServiceConfig{});
  const std::string health = ServeAndWait(&svc, R"({"health":true,"id":"h"})");
  EXPECT_TRUE(Contains(health, "\"id\":\"h\"")) << health;
  EXPECT_TRUE(Contains(health, "\"status\":\"ok\"")) << health;
  EXPECT_TRUE(Contains(health, "\"completed\":0")) << health;
  const std::string stats = ServeAndWait(&svc, R"({"stats":true,"id":"s"})");
  EXPECT_TRUE(Contains(stats, "\"id\":\"s\"")) << stats;
  EXPECT_TRUE(Contains(stats, "\"service.requests\"")) << stats;
  EXPECT_TRUE(Contains(stats, "\"metrics\":{")) << stats;
  EXPECT_FALSE(svc.PrometheusExposition().empty());
}

TEST_F(ServiceTest, DeadlineCutsRunsDegraded) {
  ServiceConfig config;
  config.workers = 1;
  JoinService svc(bench_, config);
  // An impossible quality target under a tight simulated deadline: the run
  // must come back flagged degraded with partial results, not hang or error.
  const std::string response = ServeAndWait(
      &svc, R"({"tau_good":1000000,"tau_bad":100000000,)"
            R"("deadline_seconds":40})");
  EXPECT_TRUE(Contains(response, "\"status\":\"degraded\"")) << response;
  EXPECT_TRUE(Contains(response, "\"deadline_exceeded\":true")) << response;
  EXPECT_TRUE(Contains(response, "\"requirement_met\":false")) << response;
  EXPECT_EQ(svc.stats().Snapshot().counters.at("service.degraded"), 1);
}

TEST_F(ServiceTest, ConfigDefaultDeadlineAppliesWhenRequestCarriesNone) {
  ServiceConfig config;
  config.workers = 1;
  config.default_deadline_seconds = 40.0;
  JoinService svc(bench_, config);
  const std::string response =
      ServeAndWait(&svc, R"({"tau_good":1000000,"tau_bad":100000000})");
  EXPECT_TRUE(Contains(response, "\"deadline_exceeded\":true")) << response;
}

TEST_F(ServiceTest, QueueFullShedsWithRetryHint) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue = 1;
  config.retry_after_ms = 125;
  JoinService svc(bench_, config);

  // Occupy the lone worker: its respond callback blocks until released, so
  // the worker holds its slot (responses precede slot release by design).
  std::mutex mu;
  std::condition_variable cv;
  bool worker_busy = false;
  bool release = false;
  svc.Serve(R"({"id":"slow","tau_good":5})", [&](std::string) {
    std::unique_lock<std::mutex> lock(mu);
    worker_busy = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_busy; });
  }

  // Queue slot 1 of 1: admitted, waits for the busy worker.
  std::atomic<bool> queued_answered{false};
  svc.Serve(R"({"id":"queued","tau_good":5})",
            [&](std::string) { queued_answered = true; });

  // Queue full: shed synchronously, never crash or buffer without bound.
  // The retry hint is jittered into [base, 2*base) deterministically per
  // (seed, shed ordinal), so expect exactly what the helper computes.
  for (int i = 0; i < 3; ++i) {
    std::string shed;
    svc.Serve(R"({"id":"burst"})", [&](std::string r) { shed = std::move(r); });
    EXPECT_TRUE(Contains(shed, "\"status\":\"unavailable\"")) << shed;
    EXPECT_TRUE(Contains(shed, "\"reason\":\"overloaded\"")) << shed;
    const int64_t expected = JitteredRetryAfterMs(
        config.retry_after_ms, config.shed_jitter_seed, static_cast<uint64_t>(i));
    EXPECT_GE(expected, config.retry_after_ms);
    EXPECT_LT(expected, 2 * config.retry_after_ms);
    EXPECT_TRUE(Contains(shed, "\"retry_after_ms\":" + std::to_string(expected)))
        << shed;
  }
  EXPECT_EQ(svc.stats().Snapshot().counters.at("service.shed"), 3);
  EXPECT_FALSE(queued_answered.load());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  svc.Drain();
  // Every admitted request responded; shed ones never became completions.
  EXPECT_TRUE(queued_answered.load());
  EXPECT_EQ(svc.completed_requests(), 2);
}

TEST_F(ServiceTest, DrainDeliversAdmittedThenShedsNewArrivals) {
  ServiceConfig config;
  config.workers = 2;
  JoinService svc(bench_, config);
  std::atomic<int> answered{0};
  for (int i = 0; i < 6; ++i) {
    svc.Serve(R"({"tau_good":5})", [&](std::string r) {
      EXPECT_TRUE(Contains(r, "\"status\":\"ok\"")) << r;
      answered.fetch_add(1);
    });
  }
  svc.Drain();
  // Drain() returning guarantees every admitted response was delivered.
  EXPECT_EQ(answered.load(), 6);
  EXPECT_EQ(svc.completed_requests(), 6);

  // Post-drain arrivals shed with reason "draining"; health reports it.
  const std::string shed = ServeAndWait(&svc, R"({"tau_good":5})");
  EXPECT_TRUE(Contains(shed, "\"status\":\"unavailable\"")) << shed;
  EXPECT_TRUE(Contains(shed, "\"reason\":\"draining\"")) << shed;
  const std::string health = ServeAndWait(&svc, R"({"health":true})");
  EXPECT_TRUE(Contains(health, "\"status\":\"draining\"")) << health;
  svc.Drain();  // idempotent
}

// The tentpole's core claim: a join response's bytes are a pure function of
// the request and the workbench. The same request — full SLOs, fault plan,
// pinned seed, metrics and trajectory attached — must serialize identically
// served alone on a cold-ish cache, repeated against a warm shared cache,
// and racing 15 copies of itself across 16 workers.
TEST_F(ServiceTest, ResponsesByteIdenticalAloneAndUnderConcurrency) {
  const std::string request =
      R"({"id":"det","algorithm":"zgjn","theta1":0.4,"theta2":0.4,)"
      R"("x1":"sc","x2":"sc","tau_good":20,"tau_bad":100000,)"
      R"("faults":"extract.error=0.05,retry.attempts=3","seed":1234,)"
      R"("metrics":true,"trajectory":true})";

  std::string solo;
  {
    ServiceConfig config;
    config.workers = 1;
    JoinService svc(bench_, config);
    solo = ServeAndWait(&svc, request);
  }
  ASSERT_TRUE(Contains(solo, "\"status\":")) << solo;
  ASSERT_FALSE(Contains(solo, "wall.")) << "wall-clock metrics leaked: " << solo;
  ASSERT_FALSE(Contains(solo, "cache_hits"))
      << "shared-cache observables leaked: " << solo;

  // Warm shared cache, sequential repeat.
  {
    ServiceConfig config;
    config.workers = 1;
    JoinService svc(bench_, config);
    EXPECT_EQ(ServeAndWait(&svc, request), solo);
  }

  // 16 concurrent copies.
  {
    ServiceConfig config;
    config.workers = 16;
    config.max_queue = 64;
    JoinService svc(bench_, config);
    std::mutex mu;
    std::vector<std::string> responses;
    for (int i = 0; i < 16; ++i) {
      svc.Serve(request, [&](std::string r) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(r));
      });
    }
    svc.Drain();
    ASSERT_EQ(responses.size(), 16u);
    for (const std::string& r : responses) EXPECT_EQ(r, solo);
  }
}

TEST_F(ServiceTest, TelemetryFramesRecordServerStats) {
  obs::TimeSeriesRecorder recorder({/*sample_every_docs=*/0});
  ServiceConfig config;
  config.workers = 2;
  config.telemetry_every_requests = 2;
  JoinService svc(bench_, config);
  svc.AttachTelemetry(&recorder);
  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i) {
    svc.Serve(R"({"tau_good":5})", [&](std::string) { answered.fetch_add(1); });
  }
  svc.Drain();
  EXPECT_EQ(answered.load(), 4);
  ASSERT_EQ(recorder.frames().size(), 2u);  // every 2nd completion
  EXPECT_TRUE(Contains(recorder.frames()[0], "service.ok"))
      << recorder.frames()[0];
}

}  // namespace
}  // namespace service
}  // namespace iejoin
