// Service-mode suite: protocol parsing, admission control and overload
// shedding, per-request SLOs and deadlines, drain semantics, and the
// determinism contract — the same request must produce byte-identical
// responses served alone, repeated against a warm shared cache, or racing
// fifteen copies of itself. Runs unlabeled so the TSan lane covers the
// service's worker handoffs and the shared-cache locking.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "obs/telemetry.h"
#include "service/join_service.h"
#include "service/plan_cache.h"
#include "service/service_protocol.h"
#include "service/shard.h"

namespace iejoin {
namespace service {
namespace {

// ---------------------------------------------------------------------------
// Protocol: ParseServiceRequest / PlanFromRequest
// ---------------------------------------------------------------------------

TEST(ServiceProtocolTest, ParsesFullJoinRequest) {
  auto parsed = ParseServiceRequest(
      R"({"id":"r-1","algorithm":"zgjn","theta1":0.3,"theta2":0.5,)"
      R"("x1":"fs","x2":"aqg","tau_good":25,"tau_bad":4000,)"
      R"("deadline_seconds":90.5,"faults":"extract.error=0.1","seed":42,)"
      R"("metrics":true,"trajectory":true})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ServiceRequest& request = *parsed;
  EXPECT_EQ(request.kind, ServiceRequest::Kind::kJoin);
  EXPECT_EQ(request.id, "r-1");
  EXPECT_EQ(request.algorithm, "zgjn");
  EXPECT_DOUBLE_EQ(request.theta1, 0.3);
  EXPECT_DOUBLE_EQ(request.theta2, 0.5);
  EXPECT_EQ(request.x1, "fs");
  EXPECT_EQ(request.x2, "aqg");
  EXPECT_TRUE(request.has_requirement);
  EXPECT_EQ(request.tau_good, 25);
  EXPECT_EQ(request.tau_bad, 4000);
  EXPECT_DOUBLE_EQ(request.deadline_seconds, 90.5);
  EXPECT_EQ(request.faults, "extract.error=0.1");
  EXPECT_TRUE(request.has_seed);
  EXPECT_EQ(request.seed, 42u);
  EXPECT_TRUE(request.include_metrics);
  EXPECT_TRUE(request.include_trajectory);
}

TEST(ServiceProtocolTest, DefaultsMatchSchema) {
  auto parsed = ParseServiceRequest("{}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, ServiceRequest::Kind::kJoin);
  EXPECT_EQ(parsed->algorithm, "idjn");
  EXPECT_DOUBLE_EQ(parsed->theta1, 0.4);
  EXPECT_EQ(parsed->x1, "sc");
  EXPECT_FALSE(parsed->has_requirement);
  EXPECT_FALSE(parsed->has_seed);
  EXPECT_FALSE(parsed->include_metrics);
}

TEST(ServiceProtocolTest, ParsesIntrospectionKinds) {
  auto stats = ParseServiceRequest(R"({"stats":true})");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->kind, ServiceRequest::Kind::kStats);
  auto health = ParseServiceRequest(R"({"health":true,"id":"h"})");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->kind, ServiceRequest::Kind::kHealth);
  EXPECT_EQ(health->id, "h");
}

TEST(ServiceProtocolTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseServiceRequest("").ok());
  EXPECT_FALSE(ParseServiceRequest("not json").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"x")").ok());        // unterminated
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"x"} extra)").ok());  // trailing
  EXPECT_FALSE(ParseServiceRequest(R"({"frobnicate":1})").ok());  // unknown key
  EXPECT_FALSE(ParseServiceRequest(R"({"theta1":1.5})").ok());    // range
  EXPECT_FALSE(ParseServiceRequest(R"({"theta1":"hi"})").ok());   // type
  EXPECT_FALSE(ParseServiceRequest(R"({"tau_good":-5})").ok());   // sign
  // Doubles past the destination integer range would be UB to cast.
  EXPECT_FALSE(ParseServiceRequest(R"({"tau_good":1e30})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"tau_bad":9.3e18})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"seed":1.9e19})").ok());
  EXPECT_FALSE(ParseServiceRequest(R"({"seed":1e999})").ok());    // infinity
  EXPECT_FALSE(ParseServiceRequest(R"({"metrics":1})").ok());     // bool field
  EXPECT_FALSE(ParseServiceRequest(R"({"id":"a\u0041"})").ok());  // unsupported \u escape
}

TEST(ServiceProtocolTest, PlanFromRequestMapsAlgorithmsAndStrategies) {
  ServiceRequest request;
  request.algorithm = "oijn";
  request.x1 = "aqg";
  request.x2 = "fs";
  request.theta1 = 0.6;
  auto plan = PlanFromRequest(request);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, JoinAlgorithmKind::kOuterInner);
  EXPECT_EQ(plan->retrieval1, RetrievalStrategyKind::kAutomaticQueryGeneration);
  EXPECT_EQ(plan->retrieval2, RetrievalStrategyKind::kFilteredScan);
  EXPECT_DOUBLE_EQ(plan->theta1, 0.6);

  request.algorithm = "quantum";
  EXPECT_FALSE(PlanFromRequest(request).ok());
  request.algorithm = "idjn";
  request.x2 = "bm25";
  EXPECT_FALSE(PlanFromRequest(request).ok());
}

// ---------------------------------------------------------------------------
// Service behavior over a shared workbench
// ---------------------------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    // Service-mode wiring: no workbench pool (the service's workers are the
    // request drivers) and a shared bounded extraction cache.
    config.threads = 0;
    config.extraction_cache = true;
    config.extraction_cache_bytes = 8 << 20;
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
    // Worker-side replica for the sharded tests: same deterministic scenario
    // build, separate (absent) extraction cache — exactly the supervised
    // deployment, where each worker process owns its own replica, and it
    // keeps the in-process shard streams from warming the driver's cache.
    config.extraction_cache = false;
    auto worker_bench = Workbench::Create(config);
    ASSERT_TRUE(worker_bench.ok()) << worker_bench.status().ToString();
    worker_bench_ = worker_bench.value().release();
  }
  static void TearDownTestSuite() {
    delete worker_bench_;
    worker_bench_ = nullptr;
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  /// Serves one line and blocks until its response arrives.
  static std::string ServeAndWait(JoinService* svc, const std::string& line) {
    std::mutex mu;
    std::condition_variable cv;
    std::string response;
    bool done = false;
    svc->Serve(line, [&](std::string r) {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(r);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return response;
  }

  static bool Contains(const std::string& text, const std::string& needle) {
    return text.find(needle) != std::string::npos;
  }

  static Workbench* bench_;
  static Workbench* worker_bench_;
};

Workbench* ServiceTest::bench_ = nullptr;
Workbench* ServiceTest::worker_bench_ = nullptr;

TEST_F(ServiceTest, ServesJoinRequest) {
  ServiceConfig config;
  config.workers = 2;
  JoinService svc(bench_, config);
  const std::string response = ServeAndWait(
      &svc, R"({"id":"j1","algorithm":"idjn","x1":"fs","tau_good":5,)"
            R"("tau_bad":100000})");
  EXPECT_TRUE(Contains(response, "\"id\":\"j1\"")) << response;
  EXPECT_TRUE(Contains(response, "\"status\":\"ok\"")) << response;
  EXPECT_TRUE(Contains(response, "\"requirement_met\":true")) << response;
  EXPECT_TRUE(Contains(response, "\"good_tuples\":")) << response;
  svc.Drain();
  EXPECT_EQ(svc.completed_requests(), 1);
}

TEST_F(ServiceTest, MalformedRequestsRejectedWithoutAdmission) {
  JoinService svc(bench_, ServiceConfig{});
  for (const char* bad :
       {"garbage", R"({"algorithm":"quantum"})", R"({"x1":"bm25"})",
        R"({"faults":"bogus.knob=1"})", R"({"unknown_field":true})"}) {
    const std::string response = ServeAndWait(&svc, bad);
    EXPECT_TRUE(Contains(response, "\"status\":\"invalid\"")) << response;
    EXPECT_TRUE(Contains(response, "\"error\":")) << response;
  }
  // Rejections never consume queue slots or workers.
  EXPECT_EQ(svc.completed_requests(), 0);
  EXPECT_EQ(svc.stats().Snapshot().counters.at("service.rejected"), 5);
  // The service still serves joins afterwards.
  const std::string ok = ServeAndWait(&svc, R"({"tau_good":5})");
  EXPECT_TRUE(Contains(ok, "\"status\":\"ok\"")) << ok;
}

TEST_F(ServiceTest, HealthAndStatsAnswerSynchronously) {
  JoinService svc(bench_, ServiceConfig{});
  const std::string health = ServeAndWait(&svc, R"({"health":true,"id":"h"})");
  EXPECT_TRUE(Contains(health, "\"id\":\"h\"")) << health;
  EXPECT_TRUE(Contains(health, "\"status\":\"ok\"")) << health;
  EXPECT_TRUE(Contains(health, "\"completed\":0")) << health;
  const std::string stats = ServeAndWait(&svc, R"({"stats":true,"id":"s"})");
  EXPECT_TRUE(Contains(stats, "\"id\":\"s\"")) << stats;
  EXPECT_TRUE(Contains(stats, "\"service.requests\"")) << stats;
  EXPECT_TRUE(Contains(stats, "\"metrics\":{")) << stats;
  EXPECT_FALSE(svc.PrometheusExposition().empty());
}

TEST_F(ServiceTest, DeadlineCutsRunsDegraded) {
  ServiceConfig config;
  config.workers = 1;
  JoinService svc(bench_, config);
  // An impossible quality target under a tight simulated deadline: the run
  // must come back flagged degraded with partial results, not hang or error.
  const std::string response = ServeAndWait(
      &svc, R"({"tau_good":1000000,"tau_bad":100000000,)"
            R"("deadline_seconds":40})");
  EXPECT_TRUE(Contains(response, "\"status\":\"degraded\"")) << response;
  EXPECT_TRUE(Contains(response, "\"deadline_exceeded\":true")) << response;
  EXPECT_TRUE(Contains(response, "\"requirement_met\":false")) << response;
  EXPECT_EQ(svc.stats().Snapshot().counters.at("service.degraded"), 1);
}

TEST_F(ServiceTest, ConfigDefaultDeadlineAppliesWhenRequestCarriesNone) {
  ServiceConfig config;
  config.workers = 1;
  config.default_deadline_seconds = 40.0;
  JoinService svc(bench_, config);
  const std::string response =
      ServeAndWait(&svc, R"({"tau_good":1000000,"tau_bad":100000000})");
  EXPECT_TRUE(Contains(response, "\"deadline_exceeded\":true")) << response;
}

TEST_F(ServiceTest, QueueFullShedsWithRetryHint) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue = 1;
  config.retry_after_ms = 125;
  JoinService svc(bench_, config);

  // Occupy the lone worker: its respond callback blocks until released, so
  // the worker holds its slot (responses precede slot release by design).
  std::mutex mu;
  std::condition_variable cv;
  bool worker_busy = false;
  bool release = false;
  svc.Serve(R"({"id":"slow","tau_good":5})", [&](std::string) {
    std::unique_lock<std::mutex> lock(mu);
    worker_busy = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return worker_busy; });
  }

  // Queue slot 1 of 1: admitted, waits for the busy worker.
  std::atomic<bool> queued_answered{false};
  svc.Serve(R"({"id":"queued","tau_good":5})",
            [&](std::string) { queued_answered = true; });

  // Queue full: shed synchronously, never crash or buffer without bound.
  // The retry hint is jittered into [base, 2*base) deterministically per
  // (seed, shed ordinal), so expect exactly what the helper computes.
  for (int i = 0; i < 3; ++i) {
    std::string shed;
    svc.Serve(R"({"id":"burst"})", [&](std::string r) { shed = std::move(r); });
    EXPECT_TRUE(Contains(shed, "\"status\":\"unavailable\"")) << shed;
    EXPECT_TRUE(Contains(shed, "\"reason\":\"overloaded\"")) << shed;
    const int64_t expected = JitteredRetryAfterMs(
        config.retry_after_ms, config.shed_jitter_seed, static_cast<uint64_t>(i));
    EXPECT_GE(expected, config.retry_after_ms);
    EXPECT_LT(expected, 2 * config.retry_after_ms);
    EXPECT_TRUE(Contains(shed, "\"retry_after_ms\":" + std::to_string(expected)))
        << shed;
  }
  EXPECT_EQ(svc.stats().Snapshot().counters.at("service.shed"), 3);
  EXPECT_FALSE(queued_answered.load());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  svc.Drain();
  // Every admitted request responded; shed ones never became completions.
  EXPECT_TRUE(queued_answered.load());
  EXPECT_EQ(svc.completed_requests(), 2);
}

TEST_F(ServiceTest, DrainDeliversAdmittedThenShedsNewArrivals) {
  ServiceConfig config;
  config.workers = 2;
  JoinService svc(bench_, config);
  std::atomic<int> answered{0};
  for (int i = 0; i < 6; ++i) {
    svc.Serve(R"({"tau_good":5})", [&](std::string r) {
      EXPECT_TRUE(Contains(r, "\"status\":\"ok\"")) << r;
      answered.fetch_add(1);
    });
  }
  svc.Drain();
  // Drain() returning guarantees every admitted response was delivered.
  EXPECT_EQ(answered.load(), 6);
  EXPECT_EQ(svc.completed_requests(), 6);

  // Post-drain arrivals shed with reason "draining"; health reports it.
  const std::string shed = ServeAndWait(&svc, R"({"tau_good":5})");
  EXPECT_TRUE(Contains(shed, "\"status\":\"unavailable\"")) << shed;
  EXPECT_TRUE(Contains(shed, "\"reason\":\"draining\"")) << shed;
  const std::string health = ServeAndWait(&svc, R"({"health":true})");
  EXPECT_TRUE(Contains(health, "\"status\":\"draining\"")) << health;
  svc.Drain();  // idempotent
}

// The tentpole's core claim: a join response's bytes are a pure function of
// the request and the workbench. The same request — full SLOs, fault plan,
// pinned seed, metrics and trajectory attached — must serialize identically
// served alone on a cold-ish cache, repeated against a warm shared cache,
// and racing 15 copies of itself across 16 workers.
TEST_F(ServiceTest, ResponsesByteIdenticalAloneAndUnderConcurrency) {
  const std::string request =
      R"({"id":"det","algorithm":"zgjn","theta1":0.4,"theta2":0.4,)"
      R"("x1":"sc","x2":"sc","tau_good":20,"tau_bad":100000,)"
      R"("faults":"extract.error=0.05,retry.attempts=3","seed":1234,)"
      R"("metrics":true,"trajectory":true})";

  std::string solo;
  {
    ServiceConfig config;
    config.workers = 1;
    JoinService svc(bench_, config);
    solo = ServeAndWait(&svc, request);
  }
  ASSERT_TRUE(Contains(solo, "\"status\":")) << solo;
  ASSERT_FALSE(Contains(solo, "wall.")) << "wall-clock metrics leaked: " << solo;
  ASSERT_FALSE(Contains(solo, "cache_hits"))
      << "shared-cache observables leaked: " << solo;

  // Warm shared cache, sequential repeat.
  {
    ServiceConfig config;
    config.workers = 1;
    JoinService svc(bench_, config);
    EXPECT_EQ(ServeAndWait(&svc, request), solo);
  }

  // 16 concurrent copies.
  {
    ServiceConfig config;
    config.workers = 16;
    config.max_queue = 64;
    JoinService svc(bench_, config);
    std::mutex mu;
    std::vector<std::string> responses;
    for (int i = 0; i < 16; ++i) {
      svc.Serve(request, [&](std::string r) {
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(r));
      });
    }
    svc.Drain();
    ASSERT_EQ(responses.size(), 16u);
    for (const std::string& r : responses) EXPECT_EQ(r, solo);
  }
}

TEST_F(ServiceTest, TelemetryFramesRecordServerStats) {
  obs::TimeSeriesRecorder recorder({/*sample_every_docs=*/0});
  ServiceConfig config;
  config.workers = 2;
  config.telemetry_every_requests = 2;
  JoinService svc(bench_, config);
  svc.AttachTelemetry(&recorder);
  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i) {
    svc.Serve(R"({"tau_good":5})", [&](std::string) { answered.fetch_add(1); });
  }
  svc.Drain();
  EXPECT_EQ(answered.load(), 4);
  ASSERT_EQ(recorder.frames().size(), 2u);  // every 2nd completion
  EXPECT_TRUE(Contains(recorder.frames()[0], "service.ok"))
      << recorder.frames()[0];
}

// ---------------------------------------------------------------------------
// Sharded scatter/gather: in-process byte-identity matrix
// ---------------------------------------------------------------------------

// In-process shard harness: one thread per shard runs the real worker-side
// StreamShardPartition and feeds its wire-encoded partial/done payloads into
// a real ShardGatherBuffer — the same concurrent Deliver/Fetch interleavings
// the supervised gather path sees, minus the processes. This suite runs
// unlabeled, so the TSan lane covers the merge.
class LocalShardLease : public ExtractionLease {
 public:
  static constexpr uint32_t kNoDeadShard = UINT32_MAX;

  LocalShardLease(const Workbench* bench, uint32_t shards, double theta1,
                  double theta2, uint32_t dead_shard, int64_t* served_out)
      : buffer_(shards), served_out_(served_out) {
    for (uint32_t shard = 0; shard < shards; ++shard) {
      if (shard == dead_shard) {
        // A shard that never comes up: Fetch must stop waiting for its
        // documents so the driver extracts them inline.
        buffer_.MarkShardFailed(shard);
        continue;
      }
      // Live before the thread starts: a driver Fetch racing ahead of the
      // stream must block for the shard, not fall back inline.
      buffer_.MarkShardLive(shard);
      threads_.emplace_back([this, bench, shards, shard, theta1, theta2] {
        ShardRequestFrame frame;
        frame.seq = 1;
        frame.shard_index = shard;
        frame.shard_count = shards;
        frame.theta1 = theta1;
        frame.theta2 = theta2;
        auto done = StreamShardPartition(
            *bench, frame, /*docs_per_chunk=*/16,
            [this](std::string payload) {
              return buffer_.DeliverPartial(payload);
            },
            /*should_cancel=*/{});
        if (!done.ok()) {
          ADD_FAILURE() << "shard " << shard << " stream failed: "
                        << done.status().ToString();
          return;
        }
        const Status delivered = buffer_.DeliverDone(shard, *done, nullptr);
        EXPECT_TRUE(delivered.ok()) << delivered.ToString();
      });
    }
  }

  ~LocalShardLease() override {
    for (std::thread& thread : threads_) thread.join();
    if (served_out_ != nullptr) *served_out_ += buffer_.served();
  }

  ExtractionSource* source() override { return &buffer_; }

 private:
  ShardGatherBuffer buffer_;
  int64_t* served_out_;
  std::vector<std::thread> threads_;
};

// The tentpole's acceptance matrix: every algorithm, with and without an
// injected fault plan, must produce byte-identical responses whether the
// extraction is local or scattered over 1, 2, or 3 shard partitions.
TEST_F(ServiceTest, ShardedScatterGatherByteIdenticalToSingleProcess) {
  // Each request pins theta values no other test in this binary serves, so
  // the suite-shared extraction cache is cold when the first sharded pass
  // runs and the driver provably consumes scattered batches (the pipeline
  // consults the cache before the shard source).
  const std::string requests[] = {
      R"({"id":"m1","algorithm":"idjn","x1":"fs","theta1":0.33,)"
      R"("theta2":0.37,"tau_good":5,"tau_bad":100000})",
      R"({"id":"m2","algorithm":"oijn","x1":"sc","x2":"aqg","theta1":0.31,)"
      R"("theta2":0.51,"tau_good":10,"tau_bad":100000,"metrics":true})",
      R"({"id":"m3","algorithm":"zgjn","theta1":0.41,"theta2":0.43,)"
      R"("tau_good":20,"tau_bad":100000,"trajectory":true})",
      R"({"id":"m4","algorithm":"idjn","x1":"fs","theta1":0.34,)"
      R"("theta2":0.36,"tau_good":5,"tau_bad":100000,)"
      R"("faults":"extract.error=0.05,retry.attempts=2","seed":7})",
      R"({"id":"m5","algorithm":"oijn","x1":"sc","x2":"aqg","theta1":0.32,)"
      R"("theta2":0.52,"tau_good":10,"tau_bad":100000,)"
      R"("faults":"extract.error=0.1","seed":99,"metrics":true})",
      R"({"id":"m6","algorithm":"zgjn","theta1":0.42,"theta2":0.44,)"
      R"("tau_good":20,"tau_bad":100000,)"
      R"("faults":"extract.error=0.05,retry.attempts=3","seed":1234})",
  };
  ServiceConfig config;
  config.workers = 1;
  for (const std::string& request : requests) {
    // Sharded passes first (cold cache → shard-fed), baseline after.
    std::vector<std::string> sharded;
    int64_t served = 0;
    for (uint32_t shards : {1u, 2u, 3u}) {
      JoinService svc(bench_, config);
      svc.SetScatterHook(
          [&](const JoinPlanSpec& plan) -> std::unique_ptr<ExtractionLease> {
            return std::make_unique<LocalShardLease>(
                worker_bench_, shards, plan.theta1, plan.theta2,
                LocalShardLease::kNoDeadShard, &served);
          });
      sharded.push_back(ServeAndWait(&svc, request));
    }
    // The driver really consumed scattered batches somewhere in the matrix —
    // the identities below are not vacuous inline-fallback.
    EXPECT_GT(served, 0) << request;
    JoinService svc(bench_, config);
    const std::string baseline = ServeAndWait(&svc, request);
    ASSERT_TRUE(Contains(baseline, "\"status\":")) << baseline;
    for (size_t i = 0; i < sharded.size(); ++i) {
      EXPECT_EQ(sharded[i], baseline)
          << "diverged at shards=" << (i + 1) << " for " << request;
    }
  }
}

// A permanently failed shard degrades scatter to inline extraction for its
// partition only — slower, never different bytes.
TEST_F(ServiceTest, ShardedExecutionSurvivesDeadShardByInlineFallback) {
  // Thetas unique to this test keep the suite-shared extraction cache cold,
  // so the sharded pass (run before the baseline) demonstrably mixes
  // shard-fed and inline-extracted documents.
  const std::string request =
      R"({"id":"dead","algorithm":"zgjn","theta1":0.46,"theta2":0.48,)"
      R"("tau_good":20,"tau_bad":100000,"metrics":true})";
  ServiceConfig config;
  config.workers = 1;
  std::string sharded;
  int64_t served = 0;
  {
    JoinService svc(bench_, config);
    svc.SetScatterHook(
        [&](const JoinPlanSpec& plan) -> std::unique_ptr<ExtractionLease> {
          return std::make_unique<LocalShardLease>(worker_bench_, 3,
                                                   plan.theta1, plan.theta2,
                                                   /*dead_shard=*/1, &served);
        });
    sharded = ServeAndWait(&svc, request);
  }
  // The two live shards still fed the driver.
  EXPECT_GT(served, 0);
  JoinService svc(bench_, config);
  EXPECT_EQ(sharded, ServeAndWait(&svc, request));
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, LruBoundEvictsAndCounts) {
  PlanCache cache(2);
  CachedPlanChoice choice;
  choice.feasible = true;
  cache.Insert("a", choice);
  cache.Insert("b", choice);
  ASSERT_TRUE(cache.Lookup("a").has_value());  // refreshes "a" over "b"
  cache.Insert("c", choice);                   // capacity 2: evicts "b"
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  CachedPlanChoice choice;
  choice.feasible = true;
  cache.Insert("a", choice);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(PlanCacheTest, KeyNormalizesSeedAndSeparatesEverythingElse) {
  auto faults_a = fault::ParseFaultPlan("extract.error=0.05,seed=1");
  auto faults_b = fault::ParseFaultPlan("extract.error=0.05,seed=2");
  auto faults_c = fault::ParseFaultPlan("extract.error=0.1,seed=1");
  ASSERT_TRUE(faults_a.ok() && faults_b.ok() && faults_c.ok());
  // The optimizer's closed-form costing is seed-independent, so requests
  // differing only in the injector seed share one cache entry.
  EXPECT_EQ(PlanCacheKey(20, 100000, &*faults_a),
            PlanCacheKey(20, 100000, &*faults_b));
  // Different fault knobs, different SLOs, and faults-vs-none all separate.
  EXPECT_NE(PlanCacheKey(20, 100000, &*faults_a),
            PlanCacheKey(20, 100000, &*faults_c));
  EXPECT_NE(PlanCacheKey(20, 100000, nullptr),
            PlanCacheKey(25, 100000, nullptr));
  EXPECT_NE(PlanCacheKey(20, 100000, nullptr),
            PlanCacheKey(20, 200000, nullptr));
  EXPECT_NE(PlanCacheKey(20, 100000, nullptr),
            PlanCacheKey(20, 100000, &*faults_a));
  // A plan that is default except for its seed (a request carrying only
  // `seed`) costs bit-identically to no plan, so it shares the no-fault key.
  auto seed_only = fault::ParseFaultPlan("seed=9");
  ASSERT_TRUE(seed_only.ok());
  EXPECT_EQ(PlanCacheKey(20, 100000, nullptr),
            PlanCacheKey(20, 100000, &*seed_only));
}

TEST_F(ServiceTest, PlanCacheWarmHitSkipsOptimizerAndPreservesBytes) {
  ServiceConfig config;
  config.workers = 1;
  JoinService svc(bench_, config);
  const std::string request =
      R"({"id":"opt","optimize":true,"tau_good":20,"tau_bad":100000})";
  const std::string cold = ServeAndWait(&svc, request);
  EXPECT_TRUE(Contains(cold, "\"optimized\":true")) << cold;
  EXPECT_TRUE(Contains(cold, "\"predicted_seconds\":")) << cold;
  EXPECT_EQ(svc.plan_cache().misses(), 1);
  EXPECT_EQ(svc.plan_cache().hits(), 0);

  // Warm repeat: the optimizer is skipped (misses stays put) and the
  // response bytes are untouched by the cache hit.
  const std::string warm = ServeAndWait(&svc, request);
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(svc.plan_cache().misses(), 1);
  EXPECT_EQ(svc.plan_cache().hits(), 1);

  // Seed-normalized keying: the same SLO + fault knobs under two different
  // injector seeds share one entry (one miss, then a hit).
  const std::string seeded_a =
      R"({"optimize":true,"tau_good":20,"tau_bad":100000,)"
      R"("faults":"extract.error=0.05,retry.attempts=2","seed":1})";
  const std::string seeded_b =
      R"({"optimize":true,"tau_good":20,"tau_bad":100000,)"
      R"("faults":"extract.error=0.05,retry.attempts=2","seed":2})";
  ServeAndWait(&svc, seeded_a);
  EXPECT_EQ(svc.plan_cache().misses(), 2);
  ServeAndWait(&svc, seeded_b);
  EXPECT_EQ(svc.plan_cache().misses(), 2);
  EXPECT_EQ(svc.plan_cache().hits(), 2);

  // A different SLO is a different entry.
  ServeAndWait(&svc,
               R"({"optimize":true,"tau_good":25,"tau_bad":100000})");
  EXPECT_EQ(svc.plan_cache().misses(), 3);

  // The cache totals are mirrored into the service metrics registry.
  const auto counters = svc.stats().Snapshot().counters;
  EXPECT_EQ(counters.at("plan_cache.hits"), svc.plan_cache().hits());
  EXPECT_EQ(counters.at("plan_cache.misses"), svc.plan_cache().misses());
  EXPECT_EQ(counters.at("plan_cache.evictions"), svc.plan_cache().evictions());
}

TEST_F(ServiceTest, OptimizeWithoutQualitySloRejected) {
  JoinService svc(bench_, ServiceConfig{});
  const std::string response = ServeAndWait(&svc, R"({"optimize":true})");
  EXPECT_TRUE(Contains(response, "\"status\":\"invalid\"")) << response;
  EXPECT_EQ(svc.plan_cache().misses(), 0);
}

TEST_F(ServiceTest, PlanCacheCapacityZeroReRunsOptimizerEveryTime) {
  ServiceConfig config;
  config.workers = 1;
  config.plan_cache_capacity = 0;
  JoinService svc(bench_, config);
  const std::string request =
      R"({"optimize":true,"tau_good":20,"tau_bad":100000})";
  const std::string first = ServeAndWait(&svc, request);
  const std::string second = ServeAndWait(&svc, request);
  EXPECT_EQ(first, second);  // determinism does not depend on memoization
  EXPECT_EQ(svc.plan_cache().hits(), 0);
  EXPECT_EQ(svc.plan_cache().misses(), 2);
}

}  // namespace
}  // namespace service
}  // namespace iejoin
