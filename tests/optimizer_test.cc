// Tests for the plan space enumeration and the quality-aware optimizer's
// feasibility / plan-choice logic on hand-built model parameters.

#include <set>

#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/plan_space.h"

namespace iejoin {
namespace {

// --------------------------------------------------------------------------
// Plan enumeration
// --------------------------------------------------------------------------

TEST(PlanSpaceTest, DefaultCount) {
  // 2x2 thetas x (9 IDJN + 6 OIJN + 1 ZGJN) = 64.
  const auto plans = EnumeratePlans(PlanEnumerationOptions());
  EXPECT_EQ(plans.size(), 64u);
}

TEST(PlanSpaceTest, DescriptionsAreUnique) {
  const auto plans = EnumeratePlans(PlanEnumerationOptions());
  std::set<std::string> names;
  for (const auto& p : plans) names.insert(p.Describe());
  EXPECT_EQ(names.size(), plans.size());
}

TEST(PlanSpaceTest, AlgorithmToggles) {
  PlanEnumerationOptions options;
  options.include_oijn = false;
  options.include_zgjn = false;
  const auto idjn_only = EnumeratePlans(options);
  EXPECT_EQ(idjn_only.size(), 36u);
  for (const auto& p : idjn_only) {
    EXPECT_EQ(p.algorithm, JoinAlgorithmKind::kIndependent);
  }

  options.include_idjn = false;
  options.include_zgjn = true;
  const auto zgjn_only = EnumeratePlans(options);
  EXPECT_EQ(zgjn_only.size(), 4u);
}

TEST(PlanSpaceTest, SingleOuterOption) {
  PlanEnumerationOptions options;
  options.include_idjn = false;
  options.include_zgjn = false;
  options.oijn_both_outers = false;
  const auto plans = EnumeratePlans(options);
  EXPECT_EQ(plans.size(), 12u);
  for (const auto& p : plans) EXPECT_TRUE(p.outer_is_relation1);
}

TEST(PlanSpaceTest, SingleThetaSingleStrategy) {
  PlanEnumerationOptions options;
  options.thetas1 = {0.4};
  options.thetas2 = {0.4};
  options.strategies = {RetrievalStrategyKind::kScan};
  const auto plans = EnumeratePlans(options);
  // 1 IDJN + 2 OIJN + 1 ZGJN.
  EXPECT_EQ(plans.size(), 4u);
}

// --------------------------------------------------------------------------
// Optimizer on synthetic parameters
// --------------------------------------------------------------------------

class OptimizerLogicTest : public ::testing::Test {
 protected:
  OptimizerLogicTest() {
    // A symmetric synthetic setting where everything is computable by hand.
    RelationModelParams r;
    r.num_documents = 1000;
    r.num_good_docs = 300;
    r.num_bad_docs = 300;
    r.num_good_values = 100;
    r.num_bad_values = 100;
    r.good_freq = FrequencyMoments{4.0, 25.0};
    r.bad_freq = FrequencyMoments{4.0, 25.0};
    r.bad_in_good_doc_fraction = 0.5;
    r.classifier_tp = 0.9;
    r.classifier_fp = 0.2;
    r.classifier_empty = 0.05;
    r.classifier_good_occ = 0.9;
    r.classifier_bad_occ = 0.35;
    for (int i = 0; i < 20; ++i) {
      r.aqg_queries.push_back(AqgQueryStat{0.7, 30.0});
    }
    r.mean_query_hits = 10.0;
    r.mean_direct_inclusion = 0.9;
    auto pgf = GeneratingFunction::FromPmf({0.2, 0.3, 0.3, 0.2});
    r.hits_pgf = pgf.value();
    r.generates_pgf = pgf.value();

    inputs_.base_params.relation1 = r;
    inputs_.base_params.relation2 = r;
    inputs_.base_params.num_agg = 50;
    inputs_.base_params.num_agb = 20;
    inputs_.base_params.num_abg = 20;
    inputs_.base_params.num_abb = 40;

    // Linear knob curves: tp = 1 - 0.6 θ, fp = 1 - θ.
    knobs_ = std::make_unique<KnobCharacterization>(
        std::vector<double>{0.0, 1.0}, std::vector<double>{1.0, 0.4},
        std::vector<double>{1.0, 0.0});
    inputs_.knobs1 = knobs_.get();
    inputs_.knobs2 = knobs_.get();
  }

  OptimizerInputs inputs_;
  std::unique_ptr<KnobCharacterization> knobs_;
};

TEST_F(OptimizerLogicTest, ParamsForThetasStampsKnobRates) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  const JoinModelParams p = optimizer.ParamsForThetas(0.5, 1.0);
  EXPECT_NEAR(p.relation1.tp, 0.7, 1e-9);
  EXPECT_NEAR(p.relation1.fp, 0.5, 1e-9);
  EXPECT_NEAR(p.relation2.tp, 0.4, 1e-9);
  EXPECT_NEAR(p.relation2.fp, 0.0, 1e-9);
}

TEST_F(OptimizerLogicTest, EvaluatePlanFindsMinimalEffort) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.0;  // tp = fp = 1
  plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
  QualityRequirement req;
  req.min_good_tuples = 50;
  const PlanChoice choice = optimizer.EvaluatePlan(plan, req);
  ASSERT_TRUE(choice.feasible);
  // Expected good at full scan: 50 * 16 = 800; with the margin the target
  // is 57.5, reached at s = sqrt(57.5 / 800) ≈ 0.268.
  EXPECT_NEAR(static_cast<double>(choice.effort.side1), 269.0, 4.0);
  EXPECT_GE(choice.estimate.expected_good, 57.0);
  EXPECT_LE(choice.estimate.expected_good, 63.0);
}

TEST_F(OptimizerLogicTest, InfeasibleWhenGoodUnreachable) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.0;
  plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
  QualityRequirement req;
  req.min_good_tuples = 1000;  // above the 800 full-effort maximum
  EXPECT_FALSE(optimizer.EvaluatePlan(plan, req).feasible);
}

TEST_F(OptimizerLogicTest, InfeasibleWhenBadOverflows) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.0;
  plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
  QualityRequirement req;
  req.min_good_tuples = 50;
  req.max_bad_tuples = 1;  // bad accrues alongside good; cannot stay under 1
  EXPECT_FALSE(optimizer.EvaluatePlan(plan, req).feasible);
}

TEST_F(OptimizerLogicTest, StricterThetaTradesTimeForQuality) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  JoinPlanSpec loose;
  loose.algorithm = JoinAlgorithmKind::kIndependent;
  loose.theta1 = loose.theta2 = 0.0;
  loose.retrieval1 = loose.retrieval2 = RetrievalStrategyKind::kScan;
  JoinPlanSpec strict = loose;
  strict.theta1 = strict.theta2 = 1.0;  // tp 0.4, fp 0
  QualityRequirement req;
  req.min_good_tuples = 20;
  const PlanChoice loose_choice = optimizer.EvaluatePlan(loose, req);
  const PlanChoice strict_choice = optimizer.EvaluatePlan(strict, req);
  ASSERT_TRUE(loose_choice.feasible);
  ASSERT_TRUE(strict_choice.feasible);
  // The strict plan produces (almost) no bad tuples but must work longer.
  EXPECT_LT(strict_choice.estimate.expected_bad, loose_choice.estimate.expected_bad);
  EXPECT_GT(strict_choice.estimate.seconds, loose_choice.estimate.seconds);
}

TEST_F(OptimizerLogicTest, ChoosePlanPicksFastestFeasible) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  QualityRequirement req;
  req.min_good_tuples = 20;
  req.max_bad_tuples = 1000000;
  const auto choice = optimizer.ChoosePlan(req);
  ASSERT_TRUE(choice.ok()) << choice.status().ToString();
  const auto ranked = optimizer.RankPlans(req);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().plan.Describe(), choice->plan.Describe());
  for (const PlanChoice& c : ranked) {
    if (c.feasible) {
      EXPECT_GE(c.estimate.seconds, choice->estimate.seconds - 1e-9);
    }
  }
}

TEST_F(OptimizerLogicTest, RankPlansPutsFeasibleFirst) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  QualityRequirement req;
  req.min_good_tuples = 100;
  req.max_bad_tuples = 500;
  const auto ranked = optimizer.RankPlans(req);
  bool seen_infeasible = false;
  for (const PlanChoice& c : ranked) {
    if (!c.feasible) {
      seen_infeasible = true;
    } else {
      EXPECT_FALSE(seen_infeasible) << "feasible plan ranked after infeasible";
    }
  }
}

TEST_F(OptimizerLogicTest, ImpossibleRequirementFails) {
  const QualityAwareOptimizer optimizer(inputs_, PlanEnumerationOptions());
  QualityRequirement req;
  req.min_good_tuples = 1000000;
  EXPECT_FALSE(optimizer.ChoosePlan(req).ok());
}

TEST_F(OptimizerLogicTest, RectangleRatiosNeverHurtPredictedTime) {
  // The square ratio is always in the explored set, so the rectangle
  // search's best predicted time is at most the square heuristic's.
  OptimizerInputs rect = inputs_;
  rect.idjn_effort_ratios = {0.25, 1.0, 4.0};
  PlanEnumerationOptions idjn_only;
  idjn_only.include_oijn = false;
  idjn_only.include_zgjn = false;
  const QualityAwareOptimizer square_opt(inputs_, idjn_only);
  const QualityAwareOptimizer rect_opt(rect, idjn_only);
  for (int64_t tau_g : {10, 50, 200}) {
    QualityRequirement req;
    req.min_good_tuples = tau_g;
    auto s = square_opt.ChoosePlan(req);
    auto r = rect_opt.ChoosePlan(req);
    ASSERT_TRUE(s.ok() && r.ok());
    EXPECT_LE(r->estimate.seconds, s->estimate.seconds + 1e-6) << "tau_g=" << tau_g;
  }
}

TEST_F(OptimizerLogicTest, RectangleExploitsAsymmetricCosts) {
  // Side 2 documents cost 10x more to process: the rectangle search should
  // skew effort toward side 1 and beat the square heuristic.
  OptimizerInputs inputs = inputs_;
  inputs.costs2.extract_seconds = 10.0;
  OptimizerInputs rect = inputs;
  rect.idjn_effort_ratios = {0.25, 0.5, 1.0, 2.0, 4.0};
  PlanEnumerationOptions idjn_only;
  idjn_only.include_oijn = false;
  idjn_only.include_zgjn = false;
  QualityRequirement req;
  req.min_good_tuples = 60;
  const auto square = QualityAwareOptimizer(inputs, idjn_only).ChoosePlan(req);
  const auto rectangle = QualityAwareOptimizer(rect, idjn_only).ChoosePlan(req);
  ASSERT_TRUE(square.ok() && rectangle.ok());
  EXPECT_LT(rectangle->estimate.seconds, square->estimate.seconds);
  EXPECT_GT(rectangle->effort.side1, rectangle->effort.side2);
}

TEST(QualityRequirementMappingTest, PrecisionAtK) {
  const QualityRequirement req = RequirementForPrecisionAtK(0.8, 100);
  EXPECT_EQ(req.min_good_tuples, 80);
  EXPECT_EQ(req.max_bad_tuples, 20);
  const QualityRequirement exact = RequirementForPrecisionAtK(1.0, 50);
  EXPECT_EQ(exact.min_good_tuples, 50);
  EXPECT_EQ(exact.max_bad_tuples, 0);
  // Rounding keeps the requirement at least as strict as asked.
  const QualityRequirement odd = RequirementForPrecisionAtK(0.75, 10);
  EXPECT_EQ(odd.min_good_tuples, 8);
  EXPECT_EQ(odd.max_bad_tuples, 2);
}

TEST(QualityRequirementMappingTest, Recall) {
  const QualityRequirement req = RequirementForRecall(0.5, 2583.0, 10000);
  EXPECT_EQ(req.min_good_tuples, 1292);
  EXPECT_EQ(req.max_bad_tuples, 10000);
}

TEST_F(OptimizerLogicTest, MarginMakesFeasibilityConservative) {
  QualityRequirement req;
  req.min_good_tuples = 780;  // just below the 800 maximum
  OptimizerInputs tight = inputs_;
  tight.good_margin = 1.0;
  OptimizerInputs cautious = inputs_;
  cautious.good_margin = 1.15;
  JoinPlanSpec plan;
  plan.algorithm = JoinAlgorithmKind::kIndependent;
  plan.theta1 = plan.theta2 = 0.0;
  plan.retrieval1 = plan.retrieval2 = RetrievalStrategyKind::kScan;
  EXPECT_TRUE(QualityAwareOptimizer(tight, PlanEnumerationOptions())
                  .EvaluatePlan(plan, req)
                  .feasible);
  EXPECT_FALSE(QualityAwareOptimizer(cautious, PlanEnumerationOptions())
                   .EvaluatePlan(plan, req)
                   .feasible);
}

}  // namespace
}  // namespace iejoin
