// Tests for the document retrieval strategies (Section III-B): Scan,
// Filtered Scan, and Automatic Query Generation.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "harness/workbench.h"
#include "retrieval/retrieval_strategy.h"

namespace iejoin {
namespace {

class RetrievalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkbenchConfig config;
    config.scenario = ScenarioSpec::Small();
    auto bench = Workbench::Create(config);
    ASSERT_TRUE(bench.ok()) << bench.status().ToString();
    bench_ = bench.value().release();
  }
  static void TearDownTestSuite() {
    delete bench_;
    bench_ = nullptr;
  }
  static const Workbench& bench() { return *bench_; }

  static Workbench* bench_;
};

Workbench* RetrievalTest::bench_ = nullptr;

TEST(RetrievalNamesTest, StrategyNames) {
  EXPECT_STREQ(RetrievalStrategyName(RetrievalStrategyKind::kScan), "SC");
  EXPECT_STREQ(RetrievalStrategyName(RetrievalStrategyKind::kFilteredScan), "FS");
  EXPECT_STREQ(
      RetrievalStrategyName(RetrievalStrategyKind::kAutomaticQueryGeneration),
      "AQG");
}

TEST_F(RetrievalTest, ScanYieldsEveryDocumentOnceInOrder) {
  ScanStrategy scan(&bench().database1());
  ExecutionMeter meter;
  std::vector<DocId> yielded;
  while (auto d = scan.Next(&meter)) yielded.push_back(*d);
  EXPECT_EQ(static_cast<int64_t>(yielded.size()), bench().database1().size());
  for (size_t i = 0; i < yielded.size(); ++i) {
    EXPECT_EQ(yielded[i], static_cast<DocId>(i));
  }
  // Exhausted: further calls return nothing.
  EXPECT_FALSE(scan.Next(&meter).has_value());
}

TEST_F(RetrievalTest, ScanChargesRetrievalPerDocument) {
  ScanStrategy scan(&bench().database1());
  ExecutionMeter meter;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(scan.Next(&meter).has_value());
  EXPECT_EQ(meter.docs_retrieved(), 10);
  EXPECT_EQ(meter.docs_filtered(), 0);
  EXPECT_EQ(meter.queries_issued(), 0);
}

TEST_F(RetrievalTest, FilteredScanYieldsExactlyAcceptedDocuments) {
  const TextDatabase& db = bench().database1();
  auto classifier = NaiveBayesClassifier::Train(*bench().training_scenario().corpus1);
  ASSERT_TRUE(classifier.ok());
  FilteredScanStrategy fs(&db, classifier->get());
  ExecutionMeter meter;
  std::set<DocId> yielded;
  while (auto d = fs.Next(&meter)) yielded.insert(*d);
  // It must yield exactly the accepted documents.
  for (int64_t i = 0; i < db.size(); ++i) {
    const Document& doc = db.ScanDocument(i);
    EXPECT_EQ(yielded.count(doc.id) > 0, (*classifier)->IsLikelyGood(doc));
  }
  // Every document was retrieved and filtered even if not yielded.
  EXPECT_EQ(meter.docs_retrieved(), db.size());
  EXPECT_EQ(meter.docs_filtered(), db.size());
}

TEST_F(RetrievalTest, AqgYieldsOnlyQueryMatches) {
  const TextDatabase& db = bench().database1();
  AqgStrategy aqg(&db, bench().queries1());
  ExecutionMeter meter;
  std::set<DocId> yielded;
  while (auto d = aqg.Next(&meter)) {
    EXPECT_TRUE(yielded.insert(*d).second) << "duplicate doc " << *d;
  }
  // Each yielded doc matches at least one learned query.
  for (DocId d : yielded) {
    const Document& doc = db.corpus().document(d);
    bool matches = false;
    for (const LearnedQuery& q : bench().queries1()) {
      if (std::find(doc.tokens.begin(), doc.tokens.end(), q.terms[0]) !=
          doc.tokens.end()) {
        matches = true;
        break;
      }
    }
    EXPECT_TRUE(matches);
  }
  EXPECT_EQ(meter.queries_issued(),
            static_cast<int64_t>(bench().queries1().size()));
  EXPECT_EQ(meter.docs_retrieved(), static_cast<int64_t>(yielded.size()));
}

TEST_F(RetrievalTest, AqgReachesOnlyPartOfDatabase) {
  const TextDatabase& db = bench().database1();
  AqgStrategy aqg(&db, bench().queries1());
  ExecutionMeter meter;
  int64_t count = 0;
  while (aqg.Next(&meter).has_value()) ++count;
  EXPECT_LT(count, db.size());
  EXPECT_GT(count, 0);
}

TEST_F(RetrievalTest, AqgPrefersGoodDocuments) {
  const TextDatabase& db = bench().database1();
  AqgStrategy aqg(&db, bench().queries1());
  ExecutionMeter meter;
  int64_t good = 0;
  int64_t total = 0;
  while (auto d = aqg.Next(&meter)) {
    ++total;
    good += ClassifyByGroundTruth(db.corpus().document(*d)) == DocumentClass::kGood
                ? 1
                : 0;
  }
  const auto& truth = db.corpus().ground_truth();
  const double base_rate = static_cast<double>(truth.good_docs.size()) /
                           static_cast<double>(db.size());
  EXPECT_GT(static_cast<double>(good) / static_cast<double>(total),
            1.3 * base_rate);
}

TEST_F(RetrievalTest, FactoryBuildsEachKind) {
  auto classifier = NaiveBayesClassifier::Train(*bench().training_scenario().corpus1);
  ASSERT_TRUE(classifier.ok());
  auto scan = CreateRetrievalStrategy(RetrievalStrategyKind::kScan,
                                      &bench().database1(), nullptr, nullptr);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ((*scan)->kind(), RetrievalStrategyKind::kScan);

  auto fs = CreateRetrievalStrategy(RetrievalStrategyKind::kFilteredScan,
                                    &bench().database1(), classifier->get(), nullptr);
  ASSERT_TRUE(fs.ok());
  EXPECT_EQ((*fs)->kind(), RetrievalStrategyKind::kFilteredScan);

  auto aqg = CreateRetrievalStrategy(RetrievalStrategyKind::kAutomaticQueryGeneration,
                                     &bench().database1(), nullptr,
                                     &bench().queries1());
  ASSERT_TRUE(aqg.ok());
  EXPECT_EQ((*aqg)->kind(), RetrievalStrategyKind::kAutomaticQueryGeneration);
}

TEST_F(RetrievalTest, FactoryValidatesDependencies) {
  EXPECT_FALSE(CreateRetrievalStrategy(RetrievalStrategyKind::kScan, nullptr, nullptr,
                                       nullptr)
                   .ok());
  EXPECT_FALSE(CreateRetrievalStrategy(RetrievalStrategyKind::kFilteredScan,
                                       &bench().database1(), nullptr, nullptr)
                   .ok());
  EXPECT_FALSE(CreateRetrievalStrategy(RetrievalStrategyKind::kAutomaticQueryGeneration,
                                       &bench().database1(), nullptr, nullptr)
                   .ok());
  const std::vector<LearnedQuery> empty;
  EXPECT_FALSE(CreateRetrievalStrategy(RetrievalStrategyKind::kAutomaticQueryGeneration,
                                       &bench().database1(), nullptr, &empty)
                   .ok());
}

}  // namespace
}  // namespace iejoin
