# Process-level chaos harness for the supervised service (ctest label
# "chaos"; see docs/SERVICE.md "Supervised multi-process mode").
#
# Usage: chaos_client.py SERVER_BIN SCENARIO WORKDIR [SEED] [ONLY]
#
# ONLY (optional) runs a single scenario by name ("sharded") instead of the
# default full sweep — used by the shard-smoke CI lane.
#
# Five scenarios, all against real iejoin_server processes:
#
#  1. Failover burst: a 64-request mixed join burst through `--supervise
#     --workers 3` while a seeded killer SIGKILLs/SIGABRTs busy and idle
#     workers. Every request must get exactly one response, byte-identical
#     to an uninterrupted single-process run of the same requests.
#  2. Kill-point burst: workers armed via IEJOIN_KILL_AFTER die abruptly
#     (std::_Exit inside an extraction/query op — mid-request by
#     construction). Same exactly-one-response + byte-identity assertions.
#  3. Crash-loop breaker: killing one slot's worker repeatedly must trip
#     its breaker (slot reported "down", capacity shrinks) while the
#     remaining workers keep serving.
#  4. Journal restart report: SIGKILL the supervisor itself mid-request;
#     a restarted supervisor must report the predecessor's admitted /
#     responded / unanswered tally from the journal.
#  5. Sharded scatter/gather (`--shard`): the same burst through a sharded
#     supervisor must match the single-process baseline byte for byte, a
#     worker SIGKILL mid-scatter must be absorbed by a shard replay (same
#     byte-identity), and a repeated optimize request must hit the plan
#     cache.
import atexit
import json
import os
import random
import re
import signal
import socket
import subprocess
import sys
import threading
import time

SERVER = sys.argv[1]
SCENARIO = sys.argv[2]
WORKDIR = sys.argv[3]
SEED = int(sys.argv[4]) if len(sys.argv) > 4 else 1234
ONLY = sys.argv[5] if len(sys.argv) > 5 else ""

rng = random.Random(SEED)

# Every supervisor this harness spawns. A failed assertion must not leak
# them: a leaked supervisor holds the inherited stdout pipe open and hangs
# ctest forever. SIGKILL on exit reaps the supervisor; orphaned workers see
# EOF on their channel and exit on their own.
SPAWNED = []


def kill_spawned():
    for proc in SPAWNED:
        if proc.poll() is None:
            try:
                proc.kill()
                proc.wait(timeout=10)
            except Exception:
                pass


atexit.register(kill_spawned)


def fail(msg):
    print("chaos: FAIL:", msg)
    sys.exit(1)


def make_requests():
    """64 mixed joins: every algorithm, strategy mix, SLO shape, and a few
    fault specs, each with a unique id and a fixed seed so responses are
    reproducible."""
    reqs = []
    algos = ["idjn", "oijn", "zgjn"]
    strategies = ["sc", "fs", "aqg"]
    for i in range(64):
        req = {"id": "r%02d" % i, "algorithm": algos[i % 3], "seed": i + 1}
        if i % 4 != 3:
            req["tau_good"] = [5, 20, 60][i % 3]
            req["tau_bad"] = 100000
        if i % 5 == 0:
            req["x1"] = strategies[i % 3]
        if i % 7 == 0:
            req["faults"] = "extract.error=0.05"
        if i % 9 == 0:
            req["deadline_seconds"] = 150
        if i % 6 == 0:
            req["metrics"] = True
        reqs.append(json.dumps(req, sort_keys=True))
    return reqs


REQUESTS = make_requests()

# The slowest request shape this scenario offers (full-corpus zigzag with a
# trajectory). Used by the targeted mid-request kill step: sent one at a
# time, so any busy worker must be serving it.
TARGETED = [
    json.dumps({"id": "t%d" % k, "algorithm": "zgjn", "tau_good": 100000,
                "tau_bad": 10000000, "seed": 50 + k, "trajectory": True},
               sort_keys=True)
    for k in range(6)
]


def run_baseline():
    """Uninterrupted single-process run: the byte-level ground truth. The
    queue must hold the whole pipelined burst (same bound as the chaos
    runs) or the baseline itself sheds."""
    everything = REQUESTS + TARGETED
    payload = ("\n".join(everything) + "\n").encode()
    proc = subprocess.run(
        [SERVER, "--scenario", SCENARIO, "--workers", "2",
         "--max-queue", "128", "--extraction-cache-mb", "8"],
        input=payload, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        timeout=600)
    if proc.returncode != 0:
        fail("baseline server exited %d" % proc.returncode)
    responses = {}
    for line in proc.stdout.decode().splitlines():
        rid = json.loads(line)["id"]
        if rid in responses:
            fail("baseline duplicated response for %s" % rid)
        responses[rid] = line
    if len(responses) != len(everything):
        fail("baseline answered %d of %d" % (len(responses), len(everything)))
    return responses


class Client:
    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.buf = b""

    def send_line(self, line):
        self.sock.sendall(line.encode() + b"\n")

    def recv_line(self, timeout=300.0):
        self.sock.settimeout(timeout)
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise RuntimeError("server closed the connection")
            self.buf += chunk
        line, _, self.buf = self.buf.partition(b"\n")
        return line.decode()

    def request(self, obj_line, timeout=300.0):
        self.send_line(obj_line)
        return json.loads(self.recv_line(timeout))

    def close(self):
        self.sock.close()


def start_server(name, extra_flags, env_extra=None):
    sock_path = os.path.join(WORKDIR, name + ".sock")
    err_path = os.path.join(WORKDIR, name + ".err")
    if os.path.exists(sock_path):
        os.unlink(sock_path)
    env = dict(os.environ)
    env.pop("IEJOIN_KILL_AFTER", None)
    env.pop("IEJOIN_KILL_SITE", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [SERVER, "--scenario", SCENARIO, "--supervise", "--socket", sock_path,
         "--extraction-cache-mb", "8", "--restart-backoff-ms", "20"]
        + extra_flags,
        stdout=subprocess.DEVNULL, stderr=open(err_path, "wb"), env=env)
    SPAWNED.append(proc)
    for _ in range(600):
        if os.path.exists(sock_path):
            return proc, sock_path, err_path
        if proc.poll() is not None:
            fail("%s server died at startup (exit %s); see %s"
                 % (name, proc.returncode, err_path))
        time.sleep(0.1)
    proc.kill()
    fail("%s server never created its socket" % name)


def stop_server(proc):
    proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=300)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("server did not drain within timeout after SIGTERM")


def get_stats(client):
    resp = client.request('{"id":"__stats","stats":true}', timeout=60.0)
    if resp.get("id") != "__stats":
        fail("stats response mismatched: %s" % resp)
    return resp


def wait_workers_idle(client, want, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        st = get_stats(client)
        idle = [w for w in st["workers"] if w["state"] == "idle"]
        if len(idle) >= want:
            return st
        time.sleep(0.2)
    fail("workers never became idle")


def check_responses(got, baseline, context):
    if len(got) != len(REQUESTS):
        missing = sorted(set(json.loads(r)["id"] for r in REQUESTS)
                         - set(got.keys()))
        fail("%s: %d responses for %d requests (missing %s)"
             % (context, len(got), len(REQUESTS), missing[:8]))
    mismatched = [rid for rid, line in got.items() if baseline[rid] != line]
    if mismatched:
        rid = mismatched[0]
        fail("%s: %d responses differ from baseline, e.g. %s:\n  sup: %s\n  one: %s"
             % (context, len(mismatched), rid, got[rid], baseline[rid]))


def drive_burst(sock_path, baseline, context="burst"):
    """Sends all requests pipelined on one connection, reading responses as
    they come."""
    data = Client(sock_path)
    ctl = Client(sock_path)
    for req in REQUESTS:
        data.send_line(req)
    got = {}
    while len(got) < len(REQUESTS):
        line = data.recv_line()
        resp = json.loads(line)
        rid = resp.get("id")
        if rid in got:
            fail("%s: duplicate response for %s" % (context, rid))
        if resp.get("status") not in ("ok", "degraded"):
            fail("%s: unexpected status for %s: %s" % (context, rid, line))
        got[rid] = line
    # Nothing extra may trail the final response.
    data.sock.settimeout(0.5)
    try:
        extra = data.sock.recv(4096)
        if extra:
            fail("%s: unexpected trailing bytes: %r" % (context, extra[:80]))
    except socket.timeout:
        pass
    st = get_stats(ctl)
    data.close()
    ctl.close()
    check_responses(got, baseline, context)
    return st


def scenario_signal_chaos(baseline):
    """Seeded SIGKILL/SIGABRT storm against busy and idle workers."""
    proc, sock_path, err_path = start_server(
        "chaos_signals",
        ["--workers", "3", "--max-queue", "128",
         "--journal", os.path.join(WORKDIR, "chaos_signals.journal"),
         "--breaker-max-crashes", "1000"])
    boot = Client(sock_path)
    wait_workers_idle(boot, want=3)
    boot.close()

    state = {"kills": 0}
    stop_evt = threading.Event()

    def killer_loop():
        # Own thread at a fixed cadence, so kills land while the main
        # thread is blocked reading responses.
        ctl = Client(sock_path)
        while not stop_evt.is_set() and state["kills"] < 6:
            try:
                st = get_stats(ctl)
            except Exception:
                break
            live = [w for w in st["workers"]
                    if w["pid"] > 0 and w["state"] in ("busy", "idle")]
            if live:
                # Seeded choice of victim and signal; busy workers preferred
                # so most kills land mid-request.
                busy = [w for w in live if w["state"] == "busy"]
                victim = rng.choice(busy or live)
                sig = rng.choice([signal.SIGKILL, signal.SIGABRT])
                try:
                    os.kill(victim["pid"], sig)
                    state["kills"] += 1
                except ProcessLookupError:
                    pass
            stop_evt.wait(0.1)
        ctl.close()

    killer = threading.Thread(target=killer_loop)
    killer.start()
    try:
        st = drive_burst(sock_path, baseline, context="signal-chaos")
    finally:
        stop_evt.set()
        killer.join()
    crashes = st["metrics"]["counters"]["supervisor.worker_crashes"]
    if state["kills"] == 0:
        fail("signal-chaos: killer never fired")
    if crashes < 1:
        fail("signal-chaos: no worker crash recorded despite %d kills"
             % state["kills"])

    # Targeted mid-request kills: the burst's requests are fast enough that
    # the storm above mostly catches idle workers, so this step sends one
    # slow request at a time — any busy worker must be serving it — and
    # SIGKILLs the first busy sighting. At least one of the tries must land
    # mid-request (replay counter advances), and every response, replayed or
    # not, must still match the baseline bytes.
    data = Client(sock_path)
    ctl = Client(sock_path)
    wait_workers_idle(ctl, want=1)
    replays_before = get_stats(ctl)["metrics"]["counters"][
        "supervisor.replays"]
    landed = False
    for line in TARGETED:
        done = threading.Event()

        def spin_kill():
            while not done.is_set():
                try:
                    s = get_stats(ctl)
                except Exception:
                    return
                busy = [w for w in s["workers"]
                        if w["state"] == "busy" and w["pid"] > 0]
                if busy:
                    try:
                        os.kill(busy[0]["pid"], signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    return  # one kill per try; a stale hit just retries
                time.sleep(0.004)

        spinner = threading.Thread(target=spin_kill)
        data.send_line(line)
        spinner.start()
        resp_line = data.recv_line()
        done.set()
        spinner.join()
        rid = json.loads(resp_line)["id"]
        if baseline[rid] != resp_line:
            fail("signal-chaos: targeted response differs from baseline:\n"
                 "  sup: %s\n  one: %s" % (resp_line, baseline[rid]))
        if get_stats(ctl)["metrics"]["counters"][
                "supervisor.replays"] > replays_before:
            landed = True
            break
    if not landed:
        fail("signal-chaos: no targeted kill landed mid-request in %d tries"
             % len(TARGETED))
    final = get_stats(ctl)
    data.close()
    ctl.close()
    stop_server(proc)
    print("chaos: signal scenario ok (%d burst kills, %d crashes, "
          "%d replays)"
          % (state["kills"],
             final["metrics"]["counters"]["supervisor.worker_crashes"],
             final["metrics"]["counters"]["supervisor.replays"]))


def scenario_kill_points(baseline):
    """Workers self-destruct mid-operation via the kill-point hook: the
    death lands inside an extraction/query op, strictly mid-request."""
    # The budget must exceed the heaviest single request's op count (the
    # no-tau exhaustion joins make ~3-4k extract hits): a fresh worker must
    # always be able to finish any one request, otherwise that request
    # deterministically kills every replacement and the supervisor rightly
    # abandons it — which is the breaker scenario's job to cover, not this
    # one. 6000 sits above any request and far below the burst total, so
    # several workers still die mid-request.
    proc, sock_path, err_path = start_server(
        "chaos_killpoint",
        ["--workers", "3", "--max-queue", "128", "--max-replays", "8",
         "--breaker-max-crashes", "1000"],
        env_extra={"IEJOIN_KILL_AFTER": "6000", "IEJOIN_KILL_SITE": "op.extract"})
    boot = Client(sock_path)
    wait_workers_idle(boot, want=3)
    boot.close()
    st = drive_burst(sock_path, baseline, context="kill-point")
    crashes = st["metrics"]["counters"]["supervisor.worker_crashes"]
    if crashes < 1:
        fail("kill-point: no worker died; IEJOIN_KILL_AFTER did not arm?")
    stop_server(proc)
    print("chaos: kill-point scenario ok (%d crashes, %d replays)"
          % (crashes, st["metrics"]["counters"]["supervisor.replays"]))


def scenario_breaker():
    """Two kills inside the window must park the slot for good."""
    proc, sock_path, err_path = start_server(
        "chaos_breaker",
        ["--workers", "2", "--breaker-max-crashes", "2",
         "--breaker-window-seconds", "600"])
    ctl = Client(sock_path)
    wait_workers_idle(ctl, want=2)

    target = 0
    for round_no in range(2):
        # Wait for the slot to hold a live worker, then kill it.
        deadline = time.time() + 120
        pid = -1
        while time.time() < deadline:
            st = get_stats(ctl)
            w = st["workers"][target]
            if w["pid"] > 0 and w["state"] in ("idle", "busy"):
                pid = w["pid"]
                break
            time.sleep(0.2)
        if pid <= 0:
            fail("breaker: slot %d never came (back) up" % target)
        os.kill(pid, signal.SIGKILL)
        time.sleep(0.3)

    deadline = time.time() + 120
    parked = False
    while time.time() < deadline:
        st = get_stats(ctl)
        w = st["workers"][target]
        if w["state"] == "down" and w["breaker_state"] == "open":
            parked = True
            break
        time.sleep(0.2)
    if not parked:
        fail("breaker: slot %d never parked: %s" % (target, st["workers"]))
    if st["metrics"]["gauges"]["supervisor.workers_down"] < 1:
        fail("breaker: workers_down gauge not raised: %s" % st["metrics"])

    # Shrunken capacity still serves.
    resp = ctl.request('{"id":"after","tau_good":5,"tau_bad":100000,"seed":1}')
    if resp.get("status") not in ("ok", "degraded"):
        fail("breaker: surviving worker failed to serve: %s" % resp)
    ctl.close()
    stop_server(proc)
    print("chaos: breaker scenario ok (slot %d parked after 2 crashes)" % target)


def scenario_journal_restart():
    """SIGKILL the supervisor mid-request; the successor must report the
    journal's admitted/responded/unanswered tally."""
    journal = os.path.join(WORKDIR, "chaos_journal.bin")
    if os.path.exists(journal):
        os.unlink(journal)
    proc, sock_path, err_path = start_server(
        "chaos_journal1", ["--workers", "1", "--journal", journal])
    ctl = Client(sock_path)
    wait_workers_idle(ctl, want=1)
    resp = ctl.request('{"id":"j1","tau_good":5,"tau_bad":100000,"seed":1}')
    if resp.get("status") != "ok":
        fail("journal: warmup join failed: %s" % resp)
    # Pipeline a backlog of slow requests on a separate data connection (the
    # single worker needs ~100ms+ to drain it), confirm the backlog is
    # visible, then SIGKILL the supervisor with work still outstanding.
    data = Client(sock_path)
    for k in range(8):
        data.send_line(json.dumps(
            {"id": "q%d" % k, "algorithm": "zgjn", "tau_good": 100000,
             "tau_bad": 10000000, "seed": 60 + k, "trajectory": True},
            sort_keys=True))
    saw_backlog = False
    deadline = time.time() + 60
    while time.time() < deadline:
        st = get_stats(ctl)
        if st["queued"] + st["active"] >= 1:
            saw_backlog = True
            break
        time.sleep(0.005)
    if not saw_backlog:
        fail("journal: backlog never became visible")
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=60)
    ctl.close()
    data.close()

    proc2, sock2, err2 = start_server(
        "chaos_journal2", ["--workers", "1", "--journal", journal])
    stop_server(proc2)
    report = open(err2).read()
    if "from a previous run" not in report:
        fail("journal: restarted supervisor printed no journal report:\n%s"
             % report)
    line = [l for l in report.splitlines() if "from a previous run" in l][0]
    m = re.search(r"(\d+) admitted, (\d+) responded, (\d+) replays, "
                  r"(\d+) unanswered", line)
    if not m:
        fail("journal: unparseable report line: %s" % line)
    admitted, responded, replays, unanswered = map(int, m.groups())
    if admitted < 2 or responded < 1 or unanswered < 1:
        fail("journal: tally does not show interrupted work: %s" % line)
    if responded + unanswered != admitted:
        fail("journal: tally does not add up: %s" % line)
    print("chaos: journal scenario ok (%s)" % line.split("] ")[-1])


def scenario_sharded(baseline):
    """Sharded scatter/gather: burst byte-identity, mid-scatter worker kill
    absorbed by a shard replay, and a warm plan-cache hit."""
    proc, sock_path, err_path = start_server(
        "chaos_sharded",
        ["--shard", "--workers", "3", "--max-queue", "128",
         "--breaker-max-crashes", "1000"])
    boot = Client(sock_path)
    wait_workers_idle(boot, want=3)
    boot.close()

    st = drive_burst(sock_path, baseline, context="sharded-burst")
    if st["metrics"]["counters"]["supervisor.scatter_docs"] < 1:
        fail("sharded-burst: no documents were scattered")

    # Mid-scatter kill: every admitted join scatters to all live shards, so
    # a SIGKILL landing while a slow request is active tears one shard's
    # stream. The supervisor must replay just that shard and the response
    # bytes must not change.
    data = Client(sock_path)
    ctl = Client(sock_path)
    wait_workers_idle(ctl, want=3)
    replays_before = get_stats(ctl)["metrics"]["counters"][
        "supervisor.shard_replays"]
    landed = False
    for line in TARGETED:
        done = threading.Event()

        def spin_kill():
            while not done.is_set():
                try:
                    s = get_stats(ctl)
                except Exception:
                    return
                if s["active"] >= 1:
                    live = [w for w in s["workers"] if w["pid"] > 0]
                    if live:
                        try:
                            os.kill(rng.choice(live)["pid"], signal.SIGKILL)
                        except ProcessLookupError:
                            pass
                        return  # one kill per try; a late hit just retries
                time.sleep(0.002)

        spinner = threading.Thread(target=spin_kill)
        data.send_line(line)
        spinner.start()
        resp_line = data.recv_line()
        done.set()
        spinner.join()
        rid = json.loads(resp_line)["id"]
        if baseline[rid] != resp_line:
            fail("sharded: response after mid-scatter kill differs:\n"
                 "  sup: %s\n  one: %s" % (resp_line, baseline[rid]))
        if get_stats(ctl)["metrics"]["counters"][
                "supervisor.shard_replays"] > replays_before:
            landed = True
            break
    if not landed:
        fail("sharded: no kill landed mid-scatter in %d tries" % len(TARGETED))

    # Plan cache: the identical optimize request twice — the repeat must be
    # a cache hit and byte-identical to the cold run.
    wait_workers_idle(ctl, want=1)
    opt = json.dumps({"id": "opt", "optimize": True, "tau_good": 20,
                      "tau_bad": 100000}, sort_keys=True)
    data.send_line(opt)
    cold = data.recv_line()
    data.send_line(opt)
    warm = data.recv_line()
    if cold != warm:
        fail("sharded: plan-cache hit changed bytes:\n  cold: %s\n  warm: %s"
             % (cold, warm))
    if json.loads(cold).get("optimized") is not True:
        fail("sharded: optimize response not optimized: %s" % cold)
    final = get_stats(ctl)
    if final["metrics"]["counters"]["plan_cache.hits"] < 1:
        fail("sharded: repeated optimize request never hit the plan cache")
    data.close()
    ctl.close()
    stop_server(proc)
    print("chaos: sharded scenario ok (%d scattered docs, %d replays, "
          "%d plan-cache hits)"
          % (final["metrics"]["counters"]["supervisor.scatter_docs"],
             final["metrics"]["counters"]["supervisor.shard_replays"],
             final["metrics"]["counters"]["plan_cache.hits"]))


def main():
    os.makedirs(WORKDIR, exist_ok=True)
    t0 = time.time()
    baseline = run_baseline()
    print("chaos: baseline captured (%d responses, %.1fs)"
          % (len(baseline), time.time() - t0))
    if ONLY:
        {"sharded": scenario_sharded}[ONLY](baseline)
    else:
        scenario_signal_chaos(baseline)
        scenario_kill_points(baseline)
        scenario_breaker()
        scenario_journal_restart()
        scenario_sharded(baseline)
    print("chaos: all scenarios ok (%.1fs, seed %d)" % (time.time() - t0, SEED))


if __name__ == "__main__":
    main()
