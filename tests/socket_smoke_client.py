# Socket-mode smoke client for cli_server_socket_smoke (tests/CMakeLists.txt).
#
# Exercises the poll-loop paths stdin pipe mode cannot reach: the very first
# accepted connection (the pollfd set must track the grown client list), a
# second client served while the first sits idle, an over-long line dropping
# only its own connection, and earlier clients staying correctly mapped to
# their pollfd entries after a disconnect compacts the client list.
import json
import socket
import sys
import time

SOCK_PATH = sys.argv[1]


def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(SOCK_PATH)
    return s


def recv_line(s):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(4096)
        if not chunk:
            break
        buf += chunk
    return buf.decode()


# First connection: first poll iteration after an accept.
c1 = connect()
c1.sendall(b'{"id":"c1","tau_good":5,"tau_bad":100000,"seed":1}\n')
r = recv_line(c1)
assert '"id":"c1"' in r and '"status":"ok"' in r, r

# Second client answered while the first stays connected but idle. Health
# must carry the serving pid and a sane uptime.
c2 = connect()
c2.sendall(b'{"id":"c2","health":true}\n')
r = recv_line(c2)
assert '"id":"c2"' in r and '"status":"ok"' in r, r
health = json.loads(r)
assert health["pid"] > 0, r
assert health["uptime_ms"] >= 0, r

# An over-long line kills its own connection (the server may respond with
# "invalid" first or a racing sendall may see EPIPE) and nothing else.
c3 = connect()
try:
    c3.sendall(b'{"id":"big","x1":"' + b"a" * (2 << 20) + b'"}\n')
    r = recv_line(c3)
    assert r == "" or "exceeds 1 MiB" in r, r
except BrokenPipeError:
    pass
c3.close()

# Disconnect mid-response: admit a join, then vanish before the response
# can be written. The worker's send must surface as EPIPE on the dead
# connection (MSG_NOSIGNAL — never a process-wide SIGPIPE) and the server
# keeps serving everyone else. The join still runs to completion, so the
# drain count at shutdown includes it.
cdm = connect()
cdm.sendall(b'{"id":"dm","algorithm":"zgjn","tau_good":20,"tau_bad":100000}\n')
cdm.close()

# Abrupt disconnect compacts the client list; c1 (an earlier index) must
# still be served afterwards, and the stats response must echo its id.
c2.close()
time.sleep(0.3)
c1.sendall(b'{"id":"c1b","stats":true}\n')
r = recv_line(c1)
assert '"id":"c1b"' in r and '"service.requests"' in r, r
stats = json.loads(r)
assert stats["pid"] > 0 and stats["uptime_ms"] >= 0, r
c1.sendall(b'{"id":"c1c","algorithm":"oijn","tau_good":5,"tau_bad":100000}\n')
r = recv_line(c1)
assert '"id":"c1c"' in r and '"status":"ok"' in r, r


# Stats after a burst: the service counters must advance by exactly the
# per-request sums the client observed. service.requests counts every
# served line (the closing stats read included), while service.ok /
# service.degraded and the completed gauge only count executed joins.
def counter(snapshot, name):
    return snapshot["metrics"]["counters"].get(name, 0)


def stats_when_idle(sock, rid):
    # Joins respond before their slot is released (that ordering is what
    # lets Drain() guarantee delivery), so counters can lag the last-read
    # response by up to --workers requests. Poll until nothing is in
    # flight so the snapshot is exact.
    deadline = time.time() + 60
    while time.time() < deadline:
        sock.sendall(('{"id":"%s","stats":true}\n' % rid).encode())
        snap = json.loads(recv_line(sock))
        assert snap["id"] == rid, snap
        if snap["queued"] == 0 and snap["active"] == 0:
            return snap
        time.sleep(0.01)
    raise AssertionError("service never went idle for %s" % rid)


s1 = stats_when_idle(c1, "s1")
BURST = 4
ok_seen = 0
degraded_seen = 0
for i in range(BURST):
    req = {"id": "b%d" % i, "tau_good": 5, "tau_bad": 100000, "seed": i + 2}
    c1.sendall((json.dumps(req) + "\n").encode())
    resp = json.loads(recv_line(c1))
    assert resp["id"] == req["id"], resp
    if resp["status"] == "ok":
        ok_seen += 1
    elif resp["status"] == "degraded":
        degraded_seen += 1
    else:
        raise AssertionError(resp)
s2 = stats_when_idle(c1, "s2")
requests_delta = counter(s2, "service.requests") - counter(s1, "service.requests")
# Every burst line plus however many stats polls s2 itself took.
assert requests_delta > BURST, (requests_delta, s1, s2)
ok_delta = counter(s2, "service.ok") - counter(s1, "service.ok")
assert ok_delta == ok_seen, (ok_delta, ok_seen, s1, s2)
degraded_delta = counter(s2, "service.degraded") - counter(s1, "service.degraded")
assert degraded_delta == degraded_seen, (degraded_delta, degraded_seen, s1, s2)
assert s2["completed"] - s1["completed"] == BURST, (s1, s2)
c1.close()
print("socket smoke ok")
