# Socket-mode smoke client for cli_server_socket_smoke (tests/CMakeLists.txt).
#
# Exercises the poll-loop paths stdin pipe mode cannot reach: the very first
# accepted connection (the pollfd set must track the grown client list), a
# second client served while the first sits idle, an over-long line dropping
# only its own connection, and earlier clients staying correctly mapped to
# their pollfd entries after a disconnect compacts the client list.
import json
import socket
import sys
import time

SOCK_PATH = sys.argv[1]


def connect():
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(SOCK_PATH)
    return s


def recv_line(s):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = s.recv(4096)
        if not chunk:
            break
        buf += chunk
    return buf.decode()


# First connection: first poll iteration after an accept.
c1 = connect()
c1.sendall(b'{"id":"c1","tau_good":5,"tau_bad":100000,"seed":1}\n')
r = recv_line(c1)
assert '"id":"c1"' in r and '"status":"ok"' in r, r

# Second client answered while the first stays connected but idle.
c2 = connect()
c2.sendall(b'{"id":"c2","health":true}\n')
r = recv_line(c2)
assert '"id":"c2"' in r and '"status":"ok"' in r, r

# An over-long line kills its own connection (the server may respond with
# "invalid" first or a racing sendall may see EPIPE) and nothing else.
c3 = connect()
try:
    c3.sendall(b'{"id":"big","x1":"' + b"a" * (2 << 20) + b'"}\n')
    r = recv_line(c3)
    assert r == "" or "exceeds 1 MiB" in r, r
except BrokenPipeError:
    pass
c3.close()

# Abrupt disconnect compacts the client list; c1 (an earlier index) must
# still be served afterwards, and the stats response must echo its id.
c2.close()
time.sleep(0.3)
c1.sendall(b'{"id":"c1b","stats":true}\n')
r = recv_line(c1)
assert '"id":"c1b"' in r and '"service.requests"' in r, r
c1.sendall(b'{"id":"c1c","algorithm":"oijn","tau_good":5,"tau_bad":100000}\n')
r = recv_line(c1)
assert '"id":"c1c"' in r and '"status":"ok"' in r, r


# Stats after a burst: the service counters must advance by exactly the
# per-request sums the client observed. service.requests counts every
# served line (the closing stats read included), while service.ok /
# service.degraded and the completed gauge only count executed joins.
def counter(snapshot, name):
    return snapshot["metrics"]["counters"].get(name, 0)


c1.sendall(b'{"id":"s1","stats":true}\n')
s1 = json.loads(recv_line(c1))
BURST = 4
ok_seen = 0
degraded_seen = 0
for i in range(BURST):
    req = {"id": "b%d" % i, "tau_good": 5, "tau_bad": 100000, "seed": i + 2}
    c1.sendall((json.dumps(req) + "\n").encode())
    resp = json.loads(recv_line(c1))
    assert resp["id"] == req["id"], resp
    if resp["status"] == "ok":
        ok_seen += 1
    elif resp["status"] == "degraded":
        degraded_seen += 1
    else:
        raise AssertionError(resp)
c1.sendall(b'{"id":"s2","stats":true}\n')
s2 = json.loads(recv_line(c1))
requests_delta = counter(s2, "service.requests") - counter(s1, "service.requests")
assert requests_delta == BURST + 1, (requests_delta, s1, s2)  # s2 counts itself
ok_delta = counter(s2, "service.ok") - counter(s1, "service.ok")
assert ok_delta == ok_seen, (ok_delta, ok_seen, s1, s2)
degraded_delta = counter(s2, "service.degraded") - counter(s1, "service.degraded")
assert degraded_delta == degraded_seen, (degraded_delta, degraded_seen, s1, s2)
assert s2["completed"] - s1["completed"] == BURST, (s1, s2)
c1.close()
print("socket smoke ok")
