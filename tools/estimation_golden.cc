// Golden estimation harness driver (bench/estimation_golden.h): sweeps the
// EstimationShapes corpora, compares estimated-vs-actual join cardinalities
// against the committed goldens in tests/golden/estimation, and regenerates
// them under --bless.
//
// Usage:
//   estimation_golden --dir <golden-dir> [--bless] [--shape <name>] [--list]
//
// Default mode checks every shape against <golden-dir>/<shape>.md and
// prints bench_regress-style FAIL lines to stderr on drift. Exit codes:
// 0 = goldens hold (or blessed), 1 = drift / missing golden, 2 = usage or
// harness error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/estimation_golden.h"

using namespace iejoin;  // NOLINT — tool binary

namespace {

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteStringToFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::string only_shape;
  bool bless = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--shape" && i + 1 < argc) {
      only_shape = argv[++i];
    } else if (arg == "--bless") {
      bless = true;
    } else if (arg == "--list") {
      for (const bench::EstimationShape& shape : bench::EstimationShapes()) {
        std::printf("%s (%s)\n", shape.name.c_str(), shape.overlap_class.c_str());
      }
      return 0;
    } else {
      std::fprintf(stderr,
                   "usage: estimation_golden --dir <golden-dir> [--bless] "
                   "[--shape <name>] [--list]\n");
      return 2;
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "estimation_golden: --dir is required\n");
    return 2;
  }

  bool drift = false;
  int shapes_run = 0;
  for (const bench::EstimationShape& shape : bench::EstimationShapes()) {
    if (!only_shape.empty() && shape.name != only_shape) continue;
    ++shapes_run;
    auto report = golden::BuildShapeReport(shape);
    if (!report.ok()) {
      std::fprintf(stderr, "estimation_golden: shape %s failed: %s\n",
                   shape.name.c_str(), report.status().ToString().c_str());
      return 2;
    }
    const std::string fresh = golden::RenderGolden(*report);
    const std::string path = dir + "/" + shape.name + ".md";
    if (bless) {
      if (!WriteStringToFile(path, fresh)) {
        std::fprintf(stderr, "estimation_golden: cannot write %s\n", path.c_str());
        return 2;
      }
      std::printf("blessed %s\n", path.c_str());
      continue;
    }
    std::string committed;
    if (!ReadFileToString(path, &committed)) {
      std::fprintf(stderr, "FAIL %s: missing golden %s (run with --bless)\n",
                   shape.name.c_str(), path.c_str());
      drift = true;
      continue;
    }
    const std::vector<std::string> failures =
        golden::CompareGolden(committed, fresh);
    for (const std::string& failure : failures) {
      std::fprintf(stderr, "[%s] %s\n", shape.name.c_str(), failure.c_str());
    }
    if (failures.empty()) {
      std::printf("OK %s (%zu fields)\n", shape.name.c_str(),
                  golden::ParseGolden(committed).fields.size());
    } else {
      drift = true;
    }
  }
  if (shapes_run == 0) {
    std::fprintf(stderr, "estimation_golden: no shape matched '%s'\n",
                 only_shape.c_str());
    return 2;
  }
  return drift ? 1 : 0;
}
