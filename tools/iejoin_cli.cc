// iejoin command-line tool.
//
//   iejoin_cli generate [--small|--paper] [--seed N] --out FILE
//       Generate a two-database join scenario and save it.
//
//   iejoin_cli inspect --scenario FILE
//       Print a scenario's statistics (documents, classes, values, overlap).
//
//   iejoin_cli run --scenario FILE [--algorithm idjn|oijn|zgjn]
//       [--theta1 X] [--theta2 X] [--x1 sc|fs|aqg] [--x2 sc|fs|aqg]
//       [--tau-good N] [--tau-bad N] [--faults SPEC]
//       [--checkpoint-dir DIR] [--checkpoint-every-docs N] [--strict]
//       [--metrics-out FILE] [--trace-out FILE] [--report-out FILE]
//       [--telemetry-out FILE] [--telemetry-every-docs N]
//       [--telemetry-every-seconds S]
//       Execute one join plan (oracle stopping when taus given, exhaustion
//       otherwise) and report output quality and simulated time. The *-out
//       flags attach the observability subsystem (docs/OBSERVABILITY.md)
//       and dump the metrics snapshot, span tree, or full run report as
//       JSON. --telemetry-out streams deterministic JSONL frames during
//       the run (one per --telemetry-every-docs retrieved documents and/or
//       --telemetry-every-seconds simulated seconds); when taus are given
//       each frame also carries the predicted-vs-observed residual against
//       the optimizer's estimate for this plan.
//       --faults injects deterministic faults (docs/ROBUSTNESS.md), e.g.
//       "extract.error=0.1,retry.attempts=4,deadline=5000". Rates may be
//       side-qualified ("r1.extract.error=0.3") and "hedge.max=2,
//       hedge.delay=0.25" races delayed duplicates instead of backing off.
//       --checkpoint-dir writes crash-consistent snapshots there every
//       --checkpoint-every-docs processed documents (docs/ROBUSTNESS.md
//       "Checkpoint & resume"); --checkpoint-keep N retains only the N
//       newest snapshots (delete oldest first; use N >= 2 to preserve the
//       fallback past a torn newest file); --strict exits with code 4 when
//       the run finished degraded (drops, breaker trips, or deadline).
//       --threads N fans document processing across N workers (default:
//       hardware concurrency; 0 = sequential) — output bytes are identical
//       at any thread count. --extraction-cache memoizes extraction per
//       (doc, θ) across the workbench's runs; --extraction-cache-mb N
//       bounds it to N MiB with LRU eviction (implies --extraction-cache;
//       evictions land in the sideN.cache_evictions counters). When
//       checkpointing, the cache image rides in every snapshot so `resume`
//       restarts warm.
//
//   iejoin_cli resume --checkpoint-dir DIR [--strict]
//       [--metrics-out FILE] [--trace-out FILE] [--report-out FILE]
//       [--telemetry-out FILE]
//       Continue a killed `run` from the newest valid snapshot in DIR
//       (corrupt newer files are skipped). The scenario path, plan, stop
//       rule, fault spec, telemetry cadence, and optimizer prediction are
//       read back from the snapshot's manifest; with the same seed the
//       resumed execution finishes bit-identically to the uninterrupted
//       one. A run checkpointed with --extraction-cache resumes with the
//       cache warm (the LRU image travels in the snapshot). Directories
//       written by `optimize --execute` resume the adaptive execution:
//       mid-phase from an executor snapshot, or at the fresh phase a plan
//       switch had chosen. --telemetry-out continues the frame series
//       exactly where the crashed run left it: concatenating the crashed
//       run's telemetry file with the resumed one reproduces the
//       uninterrupted series byte for byte.
//
//   iejoin_cli tail FILE [--follow]
//       Render a telemetry JSONL file as a live terminal view: one line
//       per frame (simulated time, docs retrieved, docs/sec, good/bad
//       tuples, cache hit rates, residual, degradation flags). --follow
//       polls a file that is still being appended and exits when the
//       run's closing frame ("final": true) arrives.
//
//   iejoin_cli optimize --scenario FILE --tau-good N --tau-bad N
//       [--faults SPEC] [--execute] [--metrics-out FILE] [--trace-out FILE]
//       Rank the full plan space for a quality requirement and print the
//       optimizer's choice. With --faults the ranking runs through the
//       fault-adjusted model (docs/ROBUSTNESS.md): efforts are sized for
//       the documents that survive drops and predicted times include the
//       expected retry/hedge overhead. --execute then runs the adaptive
//       executor from the chosen plan (online re-estimation + plan
//       switching, Section VI); with --checkpoint-dir the adaptive loop
//       state checkpoints alongside the running phase and `resume`
//       continues it.
//
// The tool retrains extractors/classifiers/queries on a freshly generated
// training scenario seeded from the file's contents, mirroring the
// Workbench pipeline but over a persisted evaluation scenario.

#include <sys/types.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <string>

#include "checkpoint/checkpoint_manager.h"
#include "checkpoint/kill_point.h"
#include "common/thread_pool.h"
#include "fault/fault_plan.h"
#include "harness/workbench.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optimizer/adaptive_checkpoint.h"
#include "optimizer/adaptive_executor.h"
#include "optimizer/optimizer.h"
#include "textdb/corpus_io.h"

namespace iejoin {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
};

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  iejoin_cli generate [--small|--paper] [--seed N] --out FILE\n"
               "  iejoin_cli inspect --scenario FILE\n"
               "  iejoin_cli run --scenario FILE [--algorithm idjn|oijn|zgjn]\n"
               "             [--theta1 X] [--theta2 X] [--x1 sc|fs|aqg] [--x2 ...]\n"
               "             [--tau-good N] [--tau-bad N] [--faults SPEC]\n"
               "             [--threads N] [--extraction-cache]\n"
               "             [--extraction-cache-mb N]\n"
               "             [--checkpoint-dir DIR] [--checkpoint-every-docs N]\n"
               "             [--checkpoint-keep N] [--strict]\n"
               "             [--metrics-out FILE] [--trace-out FILE] [--report-out FILE]\n"
               "             [--telemetry-out FILE] [--telemetry-every-docs N]\n"
               "             [--telemetry-every-seconds S] [--exposition-out FILE]\n"
               "  iejoin_cli resume --checkpoint-dir DIR [--threads N]\n"
               "             [--checkpoint-keep N] [--strict]\n"
               "             [--metrics-out FILE] [--trace-out FILE] [--report-out FILE]\n"
               "             [--telemetry-out FILE] [--exposition-out FILE]\n"
               "  iejoin_cli tail FILE [--follow]\n"
               "  iejoin_cli optimize --scenario FILE --tau-good N --tau-bad N\n"
               "             [--threads N] [--faults SPEC] [--execute] [--strict]\n"
               "             [--extraction-cache] [--extraction-cache-mb N]\n"
               "             [--checkpoint-dir DIR] [--checkpoint-every-docs N]\n"
               "             [--checkpoint-keep N]\n"
               "             [--metrics-out FILE] [--trace-out FILE]\n");
  return 2;
}

Result<RetrievalStrategyKind> ParseStrategy(const std::string& name) {
  if (name == "sc") return RetrievalStrategyKind::kScan;
  if (name == "fs") return RetrievalStrategyKind::kFilteredScan;
  if (name == "aqg") return RetrievalStrategyKind::kAutomaticQueryGeneration;
  return Status::InvalidArgument("unknown retrieval strategy: " + name);
}

int CmdGenerate(const Args& args) {
  if (!args.Has("out")) return Usage();
  ScenarioSpec spec =
      args.Has("small") ? ScenarioSpec::Small() : ScenarioSpec::PaperLike();
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 20090331));
  CorpusGenerator generator(spec);
  auto scenario = generator.Generate();
  if (!scenario.ok()) {
    std::fprintf(stderr, "generate: %s\n", scenario.status().ToString().c_str());
    return 1;
  }
  const Status saved = SaveScenario(*scenario, args.Get("out", ""));
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%lld + %lld documents)\n", args.Get("out", "").c_str(),
              static_cast<long long>(scenario->corpus1->size()),
              static_cast<long long>(scenario->corpus2->size()));
  return 0;
}

void PrintCorpusStats(const Corpus& corpus) {
  const RelationGroundTruth& t = corpus.ground_truth();
  std::printf("  %s (relation %s, %s ⋈-attr):\n", corpus.name().c_str(),
              t.relation_name.c_str(), TokenTypeName(t.join_entity_type));
  std::printf("    %lld documents: %zu good / %zu bad / %zu empty\n",
              static_cast<long long>(corpus.size()), t.good_docs.size(),
              t.bad_docs.size(), t.empty_docs.size());
  std::printf("    values: |Ag|=%lld |Ab|=%lld; occurrences: %lld good, %lld bad\n",
              static_cast<long long>(t.num_good_values),
              static_cast<long long>(t.num_bad_values),
              static_cast<long long>(t.total_good_occurrences),
              static_cast<long long>(t.total_bad_occurrences));
}

int CmdInspect(const Args& args) {
  auto scenario = LoadScenario(args.Get("scenario", ""));
  if (!scenario.ok()) {
    std::fprintf(stderr, "load: %s\n", scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("scenario: %zu vocabulary tokens\n", scenario->vocabulary->size());
  PrintCorpusStats(*scenario->corpus1);
  PrintCorpusStats(*scenario->corpus2);
  std::printf("  overlap: |Agg|=%zu |Agb|=%zu |Abg|=%zu |Abb|=%zu\n",
              scenario->values_gg.size(), scenario->values_gb.size(),
              scenario->values_bg.size(), scenario->values_bb.size());
  return 0;
}

/// Worker threads for a command: `--threads N` when given, otherwise the
/// machine's hardware concurrency (0 = sequential legacy path). Parallel
/// runs are bit-identical to sequential ones, so the default is safe.
int64_t ThreadsFromArgs(const Args& args) {
  return args.GetInt("threads",
                     static_cast<int64_t>(ThreadPool::HardwareConcurrency()));
}

/// Builds a Workbench whose evaluation scenario was loaded from disk: the
/// training/validation draws are regenerated from a spec matching the
/// loaded corpora's sizes. Telemetry pointers may be null.
Result<std::unique_ptr<Workbench>> WorkbenchForScenario(
    const std::string& path, obs::MetricsRegistry* metrics = nullptr,
    obs::Tracer* tracer = nullptr, int64_t threads = 0,
    bool extraction_cache = false, int64_t extraction_cache_bytes = 0) {
  IEJOIN_ASSIGN_OR_RETURN(JoinScenario scenario, LoadScenario(path));
  WorkbenchConfig config;
  // Match the default spec shape to the loaded sizes so the training draw
  // has comparable statistics.
  config.scenario =
      scenario.corpus1->size() <= 2000 ? ScenarioSpec::Small() : ScenarioSpec::PaperLike();
  config.metrics = metrics;
  config.tracer = tracer;
  config.threads = static_cast<int32_t>(threads);
  config.extraction_cache = extraction_cache;
  config.extraction_cache_bytes = extraction_cache_bytes;
  return Workbench::CreateForScenario(config, std::move(scenario));
}

/// `--extraction-cache-mb N` implies the cache itself; 0 = unbounded.
bool CacheFromArgs(const Args& args, int64_t* cache_bytes) {
  *cache_bytes = args.GetInt("extraction-cache-mb", 0) * (1 << 20);
  return args.Has("extraction-cache") || *cache_bytes > 0;
}

/// Writes `contents` to the path under `flag` when present; returns false
/// (after printing) on I/O failure.
bool MaybeDump(const Args& args, const std::string& flag,
               const std::string& contents) {
  if (!args.Has(flag)) return true;
  const std::string path = args.Get(flag, "");
  const Status status = obs::WriteFile(path, contents);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", flag.c_str(), status.ToString().c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Exit code for a run that completed but finished degraded, under --strict
/// (distinct from 1 = hard failure and 2 = usage error).
constexpr int kDegradedExitCode = 4;

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<JoinPlanSpec> PlanFromFields(const std::string& algorithm, double theta1,
                                    double theta2, const std::string& x1,
                                    const std::string& x2) {
  JoinPlanSpec plan;
  if (algorithm == "idjn") {
    plan.algorithm = JoinAlgorithmKind::kIndependent;
  } else if (algorithm == "oijn") {
    plan.algorithm = JoinAlgorithmKind::kOuterInner;
  } else if (algorithm == "zgjn") {
    plan.algorithm = JoinAlgorithmKind::kZigZag;
  } else {
    return Status::InvalidArgument("unknown algorithm: " + algorithm);
  }
  plan.theta1 = theta1;
  plan.theta2 = theta2;
  IEJOIN_ASSIGN_OR_RETURN(plan.retrieval1, ParseStrategy(x1));
  IEJOIN_ASSIGN_OR_RETURN(plan.retrieval2, ParseStrategy(x2));
  return plan;
}

/// Shared tail of `run` and `resume`: executes the plan, prints the summary,
/// dumps observability files, and maps --strict + degradation to the exit
/// code. `recorder` (nullable) is checked for latched telemetry write errors
/// after the run.
int ExecuteAndReport(const Workbench& bench, const JoinPlanSpec& plan,
                     const JoinExecutionOptions& options, const Args& args,
                     bool telemetry, obs::MetricsRegistry& registry,
                     obs::Tracer& tracer, obs::TimeSeriesRecorder* recorder) {
  auto result = bench.RunPlan(plan, options);
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("plan: %s\n", plan.Describe().c_str());
  std::printf("docs processed: %lld + %lld; queries: %lld + %lld\n",
              static_cast<long long>(result->final_point.docs_processed1),
              static_cast<long long>(result->final_point.docs_processed2),
              static_cast<long long>(result->final_point.queries1),
              static_cast<long long>(result->final_point.queries2));
  std::printf("output: %lld good / %lld bad join tuples in %.0f simulated s\n",
              static_cast<long long>(result->final_point.good_join_tuples),
              static_cast<long long>(result->final_point.bad_join_tuples),
              result->final_point.seconds);
  if (options.stop_rule == StopRule::kOracleQuality) {
    std::printf("requirement %s\n", result->requirement_met ? "met" : "missed");
  }
  if (result->degraded) {
    const TrajectoryPoint& fp = result->final_point;
    std::printf("degraded run: %lld docs dropped, %lld queries dropped, "
                "%lld ops retried, %lld ops failed%s\n",
                static_cast<long long>(fp.docs_dropped1 + fp.docs_dropped2),
                static_cast<long long>(fp.queries_dropped1 + fp.queries_dropped2),
                static_cast<long long>(fp.ops_retried1 + fp.ops_retried2),
                static_cast<long long>(fp.ops_failed1 + fp.ops_failed2),
                result->deadline_exceeded ? "; deadline exceeded" : "");
  }

  if (recorder != nullptr) {
    if (!recorder->status().ok()) {
      std::fprintf(stderr, "telemetry: %s\n",
                   recorder->status().ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%lld telemetry frames)\n",
                args.Get("telemetry-out", "").c_str(),
                static_cast<long long>(recorder->cursor().frames_emitted));
  }
  if (telemetry) {
    if (!MaybeDump(args, "metrics-out", registry.Snapshot().ToJson())) return 1;
    if (!MaybeDump(args, "trace-out", tracer.ToJson())) return 1;
    if (!MaybeDump(args, "exposition-out", registry.Snapshot().ToPrometheus())) {
      return 1;
    }
    if (args.Has("report-out")) {
      obs::RunReport report;
      report.label = plan.Describe();
      report.metrics = registry.Snapshot();
      report.spans = tracer.spans();
      report.dropped_spans = tracer.dropped_spans();
      report.trajectory.reserve(result->trajectory.size());
      for (const TrajectoryPoint& p : result->trajectory) {
        report.trajectory.push_back(p.ToSample());
      }
      report.prediction.observed_good =
          static_cast<double>(result->final_point.good_join_tuples);
      report.prediction.observed_bad =
          static_cast<double>(result->final_point.bad_join_tuples);
      report.prediction.observed_seconds = result->final_point.seconds;
      if (!MaybeDump(args, "report-out", report.ToJson())) return 1;
    }
  }
  if (args.Has("strict") && result->degraded) {
    std::printf("strict: degraded run -> exit %d\n", kDegradedExitCode);
    return kDegradedExitCode;
  }
  return 0;
}

/// Shared tail of `optimize --execute` and adaptive `resume`: prints the
/// phase log and totals, dumps observability files, and maps --strict +
/// degradation to the exit code.
int ReportAdaptive(const AdaptiveResult& result, const Args& args,
                   bool telemetry, obs::MetricsRegistry& registry,
                   obs::Tracer& tracer) {
  for (size_t i = 0; i < result.phases.size(); ++i) {
    const AdaptivePhase& p = result.phases[i];
    std::printf("phase %zu: %s — %.0f simulated s%s%s%s\n", i,
                p.plan.Describe().c_str(), p.seconds,
                p.switched_away ? " (switched away)" : "",
                p.exhausted ? " (exhausted)" : "",
                p.degraded ? " (degraded)" : "");
  }
  std::printf("output: %lld good / %lld bad join tuples in %.0f simulated s\n",
              static_cast<long long>(result.good_join_tuples),
              static_cast<long long>(result.bad_join_tuples),
              result.total_seconds);
  std::printf("requirement %s\n", result.requirement_met ? "met" : "missed");
  if (result.degraded) {
    std::printf("degraded run: %lld docs dropped, %lld queries dropped, "
                "%d breaker re-optimizations%s\n",
                static_cast<long long>(result.docs_dropped),
                static_cast<long long>(result.queries_dropped),
                result.breaker_reoptimizations,
                result.deadline_exceeded ? "; deadline exceeded" : "");
  }
  if (telemetry) {
    if (!MaybeDump(args, "metrics-out", registry.Snapshot().ToJson())) return 1;
    if (!MaybeDump(args, "trace-out", tracer.ToJson())) return 1;
  }
  if (args.Has("strict") && result.degraded) {
    std::printf("strict: degraded run -> exit %d\n", kDegradedExitCode);
    return kDegradedExitCode;
  }
  return 0;
}

int CmdRun(const Args& args) {
  const bool telemetry = args.Has("metrics-out") || args.Has("trace-out") ||
                         args.Has("report-out") || args.Has("exposition-out") ||
                         args.Has("telemetry-out");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::MetricsRegistry* metrics = telemetry ? &registry : nullptr;
  obs::Tracer* trace = telemetry ? &tracer : nullptr;

  int64_t cache_bytes = 0;
  const bool extraction_cache = CacheFromArgs(args, &cache_bytes);
  auto bench = WorkbenchForScenario(args.Get("scenario", ""), metrics, trace,
                                    ThreadsFromArgs(args), extraction_cache,
                                    cache_bytes);
  if (!bench.ok()) {
    std::fprintf(stderr, "workbench: %s\n", bench.status().ToString().c_str());
    return 1;
  }

  auto plan = PlanFromFields(args.Get("algorithm", "idjn"),
                             args.GetDouble("theta1", 0.4),
                             args.GetDouble("theta2", 0.4),
                             args.Get("x1", "sc"), args.Get("x2", "sc"));
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 2;
  }

  JoinExecutionOptions options;
  if (args.Has("tau-good")) {
    options.stop_rule = StopRule::kOracleQuality;
    options.requirement.min_good_tuples = args.GetInt("tau-good", 1);
    options.requirement.max_bad_tuples =
        args.GetInt("tau-bad", std::numeric_limits<int64_t>::max());
  }
  fault::FaultPlan fault_plan;
  if (args.Has("faults")) {
    auto parsed = fault::ParseFaultPlan(args.Get("faults", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "faults: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    fault_plan = *parsed;
    options.fault_plan = &fault_plan;
    std::printf("faults: %s\n", fault::DescribeFaultPlan(fault_plan).c_str());
  }
  options.metrics = metrics;
  options.tracer = trace;

  // Streaming telemetry: the recorder needs the registry (frames embed its
  // counters/gauges), which `telemetry` above already guarantees.
  obs::TimeSeriesRecorder::Options recorder_options;
  recorder_options.sample_every_docs = args.GetInt("telemetry-every-docs", 64);
  recorder_options.sample_every_seconds =
      args.GetDouble("telemetry-every-seconds", 0.0);
  obs::TimeSeriesRecorder recorder(recorder_options);
  obs::TimeSeriesRecorder* recorder_ptr = nullptr;
  double predicted_good = 0.0, predicted_bad = 0.0, predicted_seconds = 0.0;
  bool have_prediction = false;
  if (args.Has("telemetry-out")) {
    const Status opened = recorder.OpenFile(args.Get("telemetry-out", ""));
    if (!opened.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", opened.ToString().c_str());
      return 1;
    }
    // Estimator-drift tracking: when the run has a quality requirement,
    // score this exact plan through the optimizer's model so every frame
    // carries the predicted-vs-observed residual.
    if (args.Has("tau-good")) {
      auto inputs = (*bench)->OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
      if (!inputs.ok()) {
        std::fprintf(stderr, "prediction: %s\n",
                     inputs.status().ToString().c_str());
        return 1;
      }
      inputs->fault_plan = options.fault_plan;
      const QualityAwareOptimizer optimizer(*inputs, PlanEnumerationOptions());
      const PlanChoice choice =
          optimizer.EvaluatePlan(*plan, options.requirement);
      predicted_good = choice.estimate.expected_good;
      predicted_bad = choice.estimate.expected_bad;
      predicted_seconds = choice.estimate.seconds;
      have_prediction = true;
      recorder.SetPrediction(predicted_good, predicted_bad, predicted_seconds);
      std::printf("prediction: %.0f good / %.0f bad in %.0f simulated s\n",
                  predicted_good, predicted_bad, predicted_seconds);
    }
    options.telemetry = &recorder;
    recorder_ptr = &recorder;
  }

  // Durable checkpointing: the manifest embedded in every snapshot records
  // what `resume` needs to rebuild this exact execution.
  std::unique_ptr<ckpt::CheckpointManager> manager;
  if (args.Has("checkpoint-dir")) {
    ckpt::CheckpointManifest manifest;
    manifest["scenario"] = args.Get("scenario", "");
    manifest["algorithm"] = args.Get("algorithm", "idjn");
    manifest["theta1"] = FormatDouble(plan->theta1);
    manifest["theta2"] = FormatDouble(plan->theta2);
    manifest["x1"] = args.Get("x1", "sc");
    manifest["x2"] = args.Get("x2", "sc");
    if (args.Has("tau-good")) {
      manifest["tau_good"] = std::to_string(options.requirement.min_good_tuples);
      manifest["tau_bad"] = std::to_string(options.requirement.max_bad_tuples);
    }
    if (args.Has("faults")) manifest["faults"] = args.Get("faults", "");
    if (telemetry) manifest["telemetry"] = "1";
    // The cache setting travels in the manifest and its LRU image rides in
    // every snapshot, so a resumed run restarts warm with the same budget.
    if (extraction_cache) {
      manifest["extraction_cache"] = "1";
      if (cache_bytes > 0) {
        manifest["extraction_cache_mb"] =
            std::to_string(args.GetInt("extraction-cache-mb", 0));
      }
      options.checkpoint_extraction_cache = true;
    }
    // The telemetry cadence and the optimizer's prediction travel in the
    // manifest so a resumed run continues the exact same series: same
    // sampling knobs, same residual baseline.
    if (recorder_ptr != nullptr) {
      manifest["telemetry_every_docs"] =
          std::to_string(recorder_options.sample_every_docs);
      manifest["telemetry_every_seconds"] =
          FormatDouble(recorder_options.sample_every_seconds);
      if (have_prediction) {
        manifest["predicted_good"] = FormatDouble(predicted_good);
        manifest["predicted_bad"] = FormatDouble(predicted_bad);
        manifest["predicted_seconds"] = FormatDouble(predicted_seconds);
      }
    }
    const int64_t every = args.GetInt("checkpoint-every-docs", 256);
    manifest["checkpoint_every_docs"] = std::to_string(every);
    // Retention travels in the manifest so a resumed run keeps pruning
    // under the same policy. 0 = keep every snapshot.
    const int64_t keep = args.GetInt("checkpoint-keep", 0);
    if (keep > 0) manifest["checkpoint_keep"] = std::to_string(keep);
    auto opened = ckpt::CheckpointManager::Open(args.Get("checkpoint-dir", ""),
                                                manifest, keep);
    if (!opened.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    manager = std::move(*opened);
    options.checkpoint_sink = manager.get();
    options.checkpoint_every_docs = every;
    std::printf("checkpointing to %s every %lld docs%s\n",
                manager->directory().c_str(), static_cast<long long>(every),
                keep > 0 ? (", keeping last " + std::to_string(keep)).c_str()
                         : "");
  }

  return ExecuteAndReport(**bench, *plan, options, args, telemetry, registry,
                          tracer, recorder_ptr);
}

/// `resume` over a directory written by `optimize --execute`: rebuilds the
/// adaptive execution from the manifest and continues it from the loaded
/// AdaptiveCheckpoint — mid-phase when it wraps an executor snapshot, or at
/// the fresh phase a plan switch had chosen.
int CmdResumeAdaptive(const Args& args, const ckpt::LoadedCheckpoint& loaded) {
  const ckpt::CheckpointManifest& manifest = loaded.manifest;
  const auto lookup = [&manifest](const std::string& key,
                                  const std::string& fallback) {
    const auto it = manifest.find(key);
    return it == manifest.end() ? fallback : it->second;
  };
  std::printf("resuming adaptive run from %s (sequence %lld, %zu phases done)\n",
              loaded.path.c_str(), static_cast<long long>(loaded.sequence),
              loaded.adaptive.phases.size());

  // A mid-phase checkpoint records its telemetry choice inside the wrapped
  // executor snapshot; a phase-boundary one carries the registry snapshot
  // directly.
  const bool telemetry = loaded.adaptive.has_executor
                             ? loaded.adaptive.executor.has_metrics
                             : loaded.adaptive.has_metrics;
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::MetricsRegistry* metrics = telemetry ? &registry : nullptr;
  obs::Tracer* trace = telemetry ? &tracer : nullptr;
  if (args.Has("telemetry-out") || args.Has("report-out") ||
      args.Has("exposition-out")) {
    std::fprintf(stderr,
                 "resume: adaptive runs support --metrics-out/--trace-out "
                 "only\n");
    return 2;
  }
  if (!telemetry && (args.Has("metrics-out") || args.Has("trace-out"))) {
    std::fprintf(stderr,
                 "resume: checkpoint was written without observability; "
                 "*-out flags are unavailable\n");
    return 2;
  }

  // The cache setting comes back from the manifest; mid-phase snapshots
  // carry the LRU image inside the wrapped executor checkpoint, so the
  // resumed run restarts warm (a resume landing exactly on a phase boundary
  // restarts the cache cold — boundary checkpoints have no executor image).
  const bool extraction_cache = manifest.count("extraction_cache") > 0;
  const int64_t cache_bytes =
      std::atoll(lookup("extraction_cache_mb", "0").c_str()) * (1 << 20);
  auto bench = WorkbenchForScenario(lookup("scenario", ""), metrics, trace,
                                    ThreadsFromArgs(args), extraction_cache,
                                    cache_bytes);
  if (!bench.ok()) {
    std::fprintf(stderr, "workbench: %s\n", bench.status().ToString().c_str());
    return 1;
  }

  AdaptiveOptions adaptive;
  adaptive.requirement.min_good_tuples =
      std::atoll(lookup("tau_good", "1").c_str());
  adaptive.requirement.max_bad_tuples =
      std::atoll(lookup("tau_bad", "0").c_str());
  adaptive.initial_plan = loaded.adaptive.current_plan;
  fault::FaultPlan fault_plan;
  if (manifest.count("faults") > 0) {
    auto parsed = fault::ParseFaultPlan(lookup("faults", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "manifest faults: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    fault_plan = *parsed;
    adaptive.fault_plan = &fault_plan;
    std::printf("faults: %s\n", fault::DescribeFaultPlan(fault_plan).c_str());
  }
  adaptive.metrics = metrics;
  adaptive.tracer = trace;
  adaptive.pool = (*bench)->pool();
  adaptive.extraction_cache = (*bench)->extraction_cache();
  adaptive.checkpoint_extraction_cache = extraction_cache;

  // Keep checkpointing into the same directory under the same cadence and
  // retention policy; --checkpoint-keep overrides the manifest's policy.
  const int64_t keep =
      args.GetInt("checkpoint-keep",
                  std::atoll(lookup("checkpoint_keep", "0").c_str()));
  auto manager = ckpt::CheckpointManager::Open(args.Get("checkpoint-dir", ""),
                                               manifest, keep);
  if (!manager.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", manager.status().ToString().c_str());
    return 1;
  }
  adaptive.checkpoint_sink = manager->get();
  adaptive.checkpoint_every_docs =
      std::atoll(lookup("checkpoint_every_docs", "256").c_str());
  adaptive.resume_from = &loaded.adaptive;

  auto inputs = (*bench)->OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  if (!inputs.ok()) {
    std::fprintf(stderr, "inputs: %s\n", inputs.status().ToString().c_str());
    return 1;
  }
  inputs->metrics = metrics;
  inputs->tracer = trace;
  inputs->fault_plan = adaptive.fault_plan;
  AdaptiveJoinExecutor executor((*bench)->resources(), *inputs,
                                PlanEnumerationOptions());
  auto result = executor.Run(adaptive);
  if (!result.ok()) {
    std::fprintf(stderr, "resume: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return ReportAdaptive(*result, args, telemetry, registry, tracer);
}

int CmdResume(const Args& args) {
  if (!args.Has("checkpoint-dir")) return Usage();
  auto loaded = ckpt::LoadLatestValidCheckpoint(args.Get("checkpoint-dir", ""));
  if (!loaded.ok()) {
    std::fprintf(stderr, "resume: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  if (loaded->is_adaptive) return CmdResumeAdaptive(args, *loaded);
  const ckpt::CheckpointManifest& manifest = loaded->manifest;
  const auto lookup = [&manifest](const std::string& key,
                                  const std::string& fallback) {
    const auto it = manifest.find(key);
    return it == manifest.end() ? fallback : it->second;
  };
  std::printf("resuming from %s (sequence %lld)\n", loaded->path.c_str(),
              static_cast<long long>(loaded->sequence));

  // The original run's telemetry choice travels in the snapshot: an
  // executor checkpoint with metrics can only be restored into a run that
  // has a registry attached, and vice versa.
  const bool telemetry = loaded->executor.has_metrics;
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::MetricsRegistry* metrics = telemetry ? &registry : nullptr;
  obs::Tracer* trace = telemetry ? &tracer : nullptr;
  if (!telemetry &&
      (args.Has("metrics-out") || args.Has("trace-out") ||
       args.Has("report-out") || args.Has("exposition-out") ||
       args.Has("telemetry-out"))) {
    std::fprintf(stderr,
                 "resume: checkpoint was written without observability; "
                 "*-out flags are unavailable\n");
    return 2;
  }

  // Thread count is free to differ from the original run: parallel
  // execution is bit-identical to sequential, so the resumed bytes match
  // the uninterrupted run's regardless. The extraction cache comes back
  // from the manifest and its LRU image from the snapshot, so a resumed
  // run restarts warm with the original byte budget.
  const bool extraction_cache = manifest.count("extraction_cache") > 0;
  const int64_t cache_bytes =
      std::atoll(lookup("extraction_cache_mb", "0").c_str()) * (1 << 20);
  auto bench = WorkbenchForScenario(lookup("scenario", ""), metrics, trace,
                                    ThreadsFromArgs(args), extraction_cache,
                                    cache_bytes);
  if (!bench.ok()) {
    std::fprintf(stderr, "workbench: %s\n", bench.status().ToString().c_str());
    return 1;
  }
  auto plan = PlanFromFields(lookup("algorithm", "idjn"),
                             std::atof(lookup("theta1", "0.4").c_str()),
                             std::atof(lookup("theta2", "0.4").c_str()),
                             lookup("x1", "sc"), lookup("x2", "sc"));
  if (!plan.ok()) {
    std::fprintf(stderr, "manifest: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  JoinExecutionOptions options;
  if (manifest.count("tau_good") > 0) {
    options.stop_rule = StopRule::kOracleQuality;
    options.requirement.min_good_tuples =
        std::atoll(lookup("tau_good", "1").c_str());
    options.requirement.max_bad_tuples =
        std::atoll(lookup("tau_bad", "0").c_str());
  }
  fault::FaultPlan fault_plan;
  if (manifest.count("faults") > 0) {
    auto parsed = fault::ParseFaultPlan(lookup("faults", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "manifest faults: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    fault_plan = *parsed;
    options.fault_plan = &fault_plan;
    std::printf("faults: %s\n", fault::DescribeFaultPlan(fault_plan).c_str());
  }
  options.metrics = metrics;
  options.tracer = trace;

  // Continue the telemetry series where the crashed run left it: cadence
  // and prediction come back from the manifest, the sampling cursor from
  // the snapshot itself (restored inside the executor), and the
  // checkpoint-bytes accumulator is seeded below. The resumed run writes
  // its frames to its own file; concatenated with the crashed run's file
  // the series is byte-identical to an uninterrupted run's.
  obs::TimeSeriesRecorder::Options recorder_options;
  recorder_options.sample_every_docs =
      std::atoll(lookup("telemetry_every_docs", "64").c_str());
  recorder_options.sample_every_seconds =
      std::atof(lookup("telemetry_every_seconds", "0").c_str());
  obs::TimeSeriesRecorder recorder(recorder_options);
  obs::TimeSeriesRecorder* recorder_ptr = nullptr;
  if (args.Has("telemetry-out")) {
    const Status opened = recorder.OpenFile(args.Get("telemetry-out", ""));
    if (!opened.ok()) {
      std::fprintf(stderr, "telemetry: %s\n", opened.ToString().c_str());
      return 1;
    }
    if (manifest.count("predicted_good") > 0) {
      recorder.SetPrediction(std::atof(lookup("predicted_good", "0").c_str()),
                             std::atof(lookup("predicted_bad", "0").c_str()),
                             std::atof(lookup("predicted_seconds", "0").c_str()));
    }
    options.telemetry = &recorder;
    recorder_ptr = &recorder;
  }

  // Keep checkpointing into the same directory under the same cadence and
  // retention policy; the resumed run's ordinals continue past the loaded
  // snapshot's, so a re-written file after a second crash overwrites its
  // stale twin. --checkpoint-keep overrides the manifest's policy.
  const int64_t keep =
      args.GetInt("checkpoint-keep",
                  std::atoll(lookup("checkpoint_keep", "0").c_str()));
  auto manager = ckpt::CheckpointManager::Open(args.Get("checkpoint-dir", ""),
                                               manifest, keep);
  if (!manager.ok()) {
    std::fprintf(stderr, "checkpoint: %s\n", manager.status().ToString().c_str());
    return 1;
  }
  options.checkpoint_sink = manager->get();
  options.checkpoint_every_docs =
      std::atoll(lookup("checkpoint_every_docs", "256").c_str());
  options.resume_from = &loaded->executor;
  options.checkpoint_extraction_cache = extraction_cache;
  // The loaded image's predecessors plus the image itself: the resumed
  // run's checkpoint-bytes series continues exactly where the crashed
  // run's left off.
  options.resume_checkpoint_bytes =
      loaded->executor.checkpoint_bytes_written + loaded->file_bytes;

  return ExecuteAndReport(**bench, *plan, options, args, telemetry, registry,
                          tracer, recorder_ptr);
}

int CmdOptimize(const Args& args) {
  if (!args.Has("tau-good")) return Usage();
  const bool telemetry = args.Has("metrics-out") || args.Has("trace-out");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::MetricsRegistry* metrics = telemetry ? &registry : nullptr;
  obs::Tracer* trace = telemetry ? &tracer : nullptr;

  int64_t cache_bytes = 0;
  const bool extraction_cache = CacheFromArgs(args, &cache_bytes);
  auto bench = WorkbenchForScenario(args.Get("scenario", ""), metrics, trace,
                                    ThreadsFromArgs(args), extraction_cache,
                                    cache_bytes);
  if (!bench.ok()) {
    std::fprintf(stderr, "workbench: %s\n", bench.status().ToString().c_str());
    return 1;
  }
  auto inputs = (*bench)->OracleOptimizerInputs(/*include_zgjn_pgfs=*/true);
  if (!inputs.ok()) {
    std::fprintf(stderr, "inputs: %s\n", inputs.status().ToString().c_str());
    return 1;
  }
  inputs->metrics = metrics;
  inputs->tracer = trace;
  fault::FaultPlan fault_plan;
  if (args.Has("faults")) {
    auto parsed = fault::ParseFaultPlan(args.Get("faults", ""));
    if (!parsed.ok()) {
      std::fprintf(stderr, "faults: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    fault_plan = *parsed;
    inputs->fault_plan = &fault_plan;
    std::printf("faults: %s\n", fault::DescribeFaultPlan(fault_plan).c_str());
    std::printf("ranking is fault-adjusted: efforts sized for surviving docs, "
                "times include expected retry/hedge overhead\n");
  }
  QualityRequirement req;
  req.min_good_tuples = args.GetInt("tau-good", 1);
  req.max_bad_tuples = args.GetInt("tau-bad", std::numeric_limits<int64_t>::max());
  const QualityAwareOptimizer optimizer(*inputs, PlanEnumerationOptions());
  const auto ranked = optimizer.RankPlans(req);
  int shown = 0;
  std::printf("%-38s %9s %10s %10s %10s\n", "plan", "feasible", "est_good",
              "est_bad", "est_time");
  for (const PlanChoice& c : ranked) {
    if (++shown > 12) break;
    std::printf("%-38s %9s %10.0f %10.0f %9.0fs\n", c.plan.Describe().c_str(),
                c.feasible ? "yes" : "no", c.estimate.expected_good,
                c.estimate.expected_bad, c.estimate.seconds);
  }
  auto choice = optimizer.ChoosePlan(req);
  if (choice.ok()) {
    std::printf("\noptimizer picks: %s\n", choice->plan.Describe().c_str());
  } else {
    std::printf("\nno feasible plan for this requirement\n");
  }
  if (!args.Has("execute")) {
    if (telemetry) {
      if (!MaybeDump(args, "metrics-out", registry.Snapshot().ToJson())) return 1;
      if (!MaybeDump(args, "trace-out", tracer.ToJson())) return 1;
    }
    return 0;
  }

  // --execute: run the adaptive executor from the chosen plan (online
  // re-estimation + plan switching; Section VI "Putting It All Together").
  if (!choice.ok()) {
    std::fprintf(stderr, "execute: no feasible plan to start from\n");
    return 1;
  }
  AdaptiveOptions adaptive;
  adaptive.requirement = req;
  adaptive.initial_plan = choice->plan;
  if (args.Has("faults")) adaptive.fault_plan = &fault_plan;
  adaptive.metrics = metrics;
  adaptive.tracer = trace;
  adaptive.pool = (*bench)->pool();
  adaptive.extraction_cache = (*bench)->extraction_cache();

  // Durable checkpointing: manifest["adaptive"] marks the directory so
  // `resume` takes the adaptive path. The initial plan is not recorded —
  // resume continues from the checkpoint's own current_plan.
  std::unique_ptr<ckpt::CheckpointManager> manager;
  if (args.Has("checkpoint-dir")) {
    ckpt::CheckpointManifest manifest;
    manifest["adaptive"] = "1";
    manifest["scenario"] = args.Get("scenario", "");
    manifest["tau_good"] = std::to_string(req.min_good_tuples);
    manifest["tau_bad"] = std::to_string(req.max_bad_tuples);
    if (args.Has("faults")) manifest["faults"] = args.Get("faults", "");
    if (telemetry) manifest["telemetry"] = "1";
    if (extraction_cache) {
      manifest["extraction_cache"] = "1";
      if (cache_bytes > 0) {
        manifest["extraction_cache_mb"] =
            std::to_string(args.GetInt("extraction-cache-mb", 0));
      }
      // Mid-phase snapshots carry the LRU image inside the wrapped executor
      // checkpoint, so a resumed adaptive run restarts cache-warm exactly
      // like single-plan runs.
      adaptive.checkpoint_extraction_cache = true;
    }
    const int64_t every = args.GetInt("checkpoint-every-docs", 256);
    manifest["checkpoint_every_docs"] = std::to_string(every);
    const int64_t keep = args.GetInt("checkpoint-keep", 0);
    if (keep > 0) manifest["checkpoint_keep"] = std::to_string(keep);
    auto opened = ckpt::CheckpointManager::Open(args.Get("checkpoint-dir", ""),
                                                manifest, keep);
    if (!opened.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    manager = std::move(*opened);
    adaptive.checkpoint_sink = manager.get();
    adaptive.checkpoint_every_docs = every;
    std::printf("checkpointing to %s every %lld docs%s\n",
                manager->directory().c_str(), static_cast<long long>(every),
                keep > 0 ? (", keeping last " + std::to_string(keep)).c_str()
                         : "");
  }

  AdaptiveJoinExecutor executor((*bench)->resources(), *inputs,
                                PlanEnumerationOptions());
  auto result = executor.Run(adaptive);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return ReportAdaptive(*result, args, telemetry, registry, tracer);
}

// ---------------------------------------------------------------------------
// `tail`: live terminal view over a telemetry JSONL file.
// ---------------------------------------------------------------------------

/// Raw JSON token following the `skip`-th occurrence of `"key":` in a
/// frame line (number, true/false, or the opening of a nested value);
/// empty when absent. Good enough for self-produced telemetry frames: the
/// quoted needle cannot match dotted metric names like "side1.docs_retrieved".
std::string JsonToken(const std::string& line, const std::string& key,
                      int skip = 0) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = 0;
  for (;;) {
    pos = line.find(needle, pos);
    if (pos == std::string::npos) return "";
    pos += needle.size();
    if (skip-- == 0) break;
  }
  size_t end = line.find_first_of(",}", pos);
  if (end == std::string::npos) end = line.size();
  return line.substr(pos, end - pos);
}

double JsonNumber(const std::string& line, const std::string& key,
                  int skip = 0) {
  const std::string token = JsonToken(line, key, skip);
  return token.empty() ? 0.0 : std::atof(token.c_str());
}

bool JsonTrue(const std::string& line, const std::string& key) {
  return JsonToken(line, key) == "true";
}

/// Renders one frame as one terminal line; docs/sec is the simulated rate
/// since the previous frame.
void PrintFrameLine(const std::string& line, double prev_docs,
                    double prev_seconds) {
  const bool final_frame = JsonTrue(line, "final");
  const double docs = JsonNumber(line, "docs_retrieved");
  const double seconds = JsonNumber(line, "sim_seconds");
  const double dt = seconds - prev_seconds;
  const double rate = dt > 0 ? (docs - prev_docs) / dt : 0.0;
  std::printf("[%4lld] %-7s t=%7.0fs docs=%6.0f (%6.1f docs/s) "
              "good=%5.0f bad=%5.0f hit=%.2f/%.2f ckpt=%.0fB",
              static_cast<long long>(JsonNumber(line, "seq")),
              final_frame ? "final" : "running", seconds, docs, rate,
              JsonNumber(line, "good_tuples"), JsonNumber(line, "bad_tuples"),
              JsonNumber(line, "cache_hit_rate", 0),
              JsonNumber(line, "cache_hit_rate", 1),
              JsonNumber(line, "checkpoint_bytes"));
  if (line.find("\"residual\":null") == std::string::npos &&
      line.find("\"residual\":") != std::string::npos) {
    std::printf(" resid=%+.0fg/%+.0fb", JsonNumber(line, "remaining_good"),
                JsonNumber(line, "remaining_bad"));
  }
  if (JsonTrue(line, "degraded")) std::printf(" DEGRADED");
  if (JsonTrue(line, "deadline_exceeded")) std::printf(" DEADLINE");
  std::printf("\n");
}

int CmdTail(const Args& args) {
  if (!args.Has("file")) return Usage();
  const std::string path = args.Get("file", "");
  const bool follow = args.Has("follow");
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr && !follow) {
    std::fprintf(stderr, "tail: cannot open %s\n", path.c_str());
    return 1;
  }
  double prev_docs = 0.0, prev_seconds = 0.0;
  char* buf = nullptr;
  size_t cap = 0;
  int64_t frames = 0;
  for (;;) {
    if (file == nullptr) file = std::fopen(path.c_str(), "rb");
    ssize_t len = -1;
    if (file != nullptr) len = ::getline(&buf, &cap, file);
    if (len > 0 && buf[len - 1] == '\n') {
      const std::string line(buf, static_cast<size_t>(len - 1));
      PrintFrameLine(line, prev_docs, prev_seconds);
      std::fflush(stdout);
      prev_docs = JsonNumber(line, "docs_retrieved");
      prev_seconds = JsonNumber(line, "sim_seconds");
      ++frames;
      if (JsonTrue(line, "final")) break;  // run closed its series
      continue;
    }
    // EOF or a line still being written: rewind past the partial read and
    // either stop (plain tail) or poll (--follow).
    if (len > 0 && file != nullptr) {
      std::fseek(file, -static_cast<long>(len), SEEK_CUR);
    }
    if (!follow) break;
    if (file != nullptr) std::clearerr(file);
    struct timespec pause = {0, 200 * 1000 * 1000};  // 200ms
    ::nanosleep(&pause, nullptr);
  }
  std::free(buf);
  if (file != nullptr) std::fclose(file);
  if (frames == 0) {
    std::fprintf(stderr, "tail: no telemetry frames in %s\n", path.c_str());
    return 1;
  }
  std::printf("%lld frames from %s\n", static_cast<long long>(frames),
              path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  // Crash-harness hook: IEJOIN_KILL_SITE / IEJOIN_KILL_AFTER abort the
  // process at the configured operation boundary (no-op when unset).
  ckpt::ArmKillPointFromEnv();
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      // `tail` takes its input file as a positional operand.
      if (args.command == "tail" && !args.Has("file")) {
        args.flags["file"] = arg;
        continue;
      }
      return Usage();
    }
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.flags[arg] = argv[++i];
    } else {
      args.flags[arg] = "1";
    }
  }
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "inspect") return CmdInspect(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "resume") return CmdResume(args);
  if (args.command == "tail") return CmdTail(args);
  if (args.command == "optimize") return CmdOptimize(args);
  return Usage();
}

}  // namespace
}  // namespace iejoin

int main(int argc, char** argv) { return iejoin::Main(argc, argv); }
