// Long-lived join service (docs/SERVICE.md).
//
//   iejoin_server --scenario FILE [--workers N] [--max-queue N]
//       [--retry-after-ms MS] [--deadline-seconds S]
//       [--extraction-cache-mb N] [--socket PATH]
//       [--telemetry-out FILE] [--telemetry-every-requests N]
//       [--exposition-out FILE] [--shed-jitter-seed N]
//       [--supervise] [--journal FILE] [--max-replays N]
//       [--breaker-max-crashes N] [--breaker-window-seconds S]
//       [--restart-backoff-ms MS]
//
// Serves line-delimited JSON join requests (schema in docs/SERVICE.md) over
// stdin/stdout by default, or over a unix stream socket with --socket. The
// workbench — corpus, indexes, trained extractors/classifiers, the shared
// bounded extraction cache — is built once at startup and shared immutably
// by every request; per-request state (executor, meters, fault RNG,
// metrics) is private, so one request's faults can never corrupt another.
//
// Admission is bounded (--max-queue): overload sheds requests with status
// "unavailable" + retry_after_ms instead of queueing without bound or
// dying. SIGTERM/SIGINT stop admission, drain every admitted request, write
// the Prometheus exposition (--exposition-out), and exit 0.
//
// With --supervise the process becomes a supervisor that fork+execs
// --workers worker processes (this same binary, re-invoked with
// --worker-channel-fd), each holding its own workbench replica and serving
// one request at a time. A worker death — crash, kill, abort, torn frame —
// is isolated: the in-flight request is replayed on a healthy worker (the
// determinism contract makes the replayed response byte-identical) and the
// dead worker is restarted with exponential backoff until its crash-loop
// breaker trips. See docs/SERVICE.md "Supervised multi-process mode".

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checkpoint/kill_point.h"
#include "harness/workbench.h"
#include "obs/report.h"
#include "obs/telemetry.h"
#include "service/join_service.h"
#include "service/supervisor.h"
#include "textdb/corpus_io.h"

namespace iejoin {
namespace {

volatile sig_atomic_t g_shutdown = 0;

void HandleShutdownSignal(int) { g_shutdown = 1; }

/// Requests longer than this are rejected outright — a client writing an
/// unterminated line cannot grow server memory without bound.
constexpr size_t kMaxLineBytes = 1 << 20;

struct Args {
  std::map<std::string, std::string> flags;

  bool Has(const std::string& key) const { return flags.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: iejoin_server --scenario FILE [--workers N] [--max-queue N]\n"
      "           [--retry-after-ms MS] [--deadline-seconds S]\n"
      "           [--extraction-cache-mb N] [--socket PATH]\n"
      "           [--telemetry-out FILE] [--telemetry-every-requests N]\n"
      "           [--exposition-out FILE] [--shed-jitter-seed N]\n"
      "           [--supervise] [--shard] [--journal FILE] [--max-replays N]\n"
      "           [--breaker-max-crashes N] [--breaker-window-seconds S]\n"
      "           [--restart-backoff-ms MS] [--plan-cache-capacity N]\n");
  return 2;
}

/// Splits completed lines out of `buffer`, serving each. Returns false when
/// the connection exceeded the line-length bound (caller should drop it).
bool DrainLines(std::string* buffer, service::RequestServer* service,
                const service::RequestServer::Respond& respond) {
  size_t start = 0;
  for (;;) {
    const size_t newline = buffer->find('\n', start);
    if (newline == std::string::npos) break;
    std::string line = buffer->substr(start, newline - start);
    start = newline + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    service->Serve(line, respond);
  }
  buffer->erase(0, start);
  if (buffer->size() > kMaxLineBytes) {
    respond("{\"status\":\"invalid\",\"error\":\"request line exceeds 1 MiB\"}");
    buffer->clear();
    return false;
  }
  return true;
}

/// stdin/stdout pipe mode: one request per stdin line, one response per
/// stdout line (responses may interleave out of request order; match by
/// id). EOF or SIGTERM/SIGINT drains and exits.
int ServeStdin(service::RequestServer* service) {
  std::mutex write_mu;
  const auto respond = [&write_mu](std::string response) {
    std::lock_guard<std::mutex> lock(write_mu);
    response += '\n';
    std::fwrite(response.data(), 1, response.size(), stdout);
    std::fflush(stdout);
  };
  std::string buffer;
  bool skipping = false;  // discarding the tail of a rejected over-long line
  char chunk[4096];
  while (g_shutdown == 0) {
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks g_shutdown
      std::fprintf(stderr, "iejoin_server: stdin read: %s\n",
                   std::strerror(errno));
      break;
    }
    if (n == 0) break;  // EOF: client closed the pipe
    size_t offset = 0;
    if (skipping) {
      // DrainLines rejected an over-long line mid-stream; its remaining
      // bytes must not be parsed as fresh requests, so discard up to and
      // including the next newline before resuming.
      const void* newline = std::memchr(chunk, '\n', static_cast<size_t>(n));
      if (newline == nullptr) continue;
      offset = static_cast<size_t>(static_cast<const char*>(newline) - chunk) + 1;
      skipping = false;
    }
    buffer.append(chunk + offset, static_cast<size_t>(n) - offset);
    if (!DrainLines(&buffer, service, respond)) skipping = true;
  }
  return 0;
}

/// One accepted unix-socket connection. Worker threads respond through the
/// shared_ptr while the poll loop owns reads; the fd closes when the last
/// holder lets go, so a response racing a disconnect writes into a closed
/// (never a reused) descriptor.
struct Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() { ::close(fd); }

  void Write(std::string response) {
    response += '\n';
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load()) return;
    size_t off = 0;
    while (off < response.size()) {
      // MSG_NOSIGNAL: a client that disconnected mid-response must surface
      // as EPIPE here, never as a process-wide SIGPIPE (belt to the
      // signal(SIGPIPE, SIG_IGN) suspenders — a library or a future
      // refactor resetting the disposition cannot reintroduce the kill).
      const ssize_t n = ::send(fd, response.data() + off,
                               response.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        closed.store(true);  // EPIPE etc.: client went away
        return;
      }
      off += static_cast<size_t>(n);
    }
  }

  const int fd;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
  std::string buffer;
};

/// Unix stream socket mode: accepts any number of clients, one JSON line
/// per request. SIGTERM/SIGINT stops accepting, drains, and exits.
int ServeSocket(service::RequestServer* service, const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0) {
    std::fprintf(stderr, "iejoin_server: socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "iejoin_server: socket path too long\n");
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 64) < 0) {
    std::fprintf(stderr, "iejoin_server: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "iejoin_server: listening on %s\n", path.c_str());

  std::vector<std::shared_ptr<Connection>> clients;
  while (g_shutdown == 0) {
    std::vector<pollfd> fds;
    fds.push_back({listener, POLLIN, 0});
    for (const auto& client : clients) {
      fds.push_back({client->fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "iejoin_server: poll: %s\n", std::strerror(errno));
      break;
    }
    // fds[1..polled] map 1:1 onto the first `polled` clients. The accept
    // below may grow `clients` past that, and erasing mid-loop would shift
    // later clients off their pollfd entries — so the loop only walks the
    // snapshot and marks dead clients, which are compacted afterwards.
    const size_t polled = clients.size();
    if (fds[0].revents & POLLIN) {
      // SOCK_CLOEXEC atomically, like the listener: in --supervise mode a
      // worker fork+exec'd after this accept (crash restarts) must not
      // inherit the client fd, or the connection never fully closes toward
      // the client when the supervisor drops it — a client waiting for EOF
      // after drain/disconnect would hang until the workers exit.
      const int fd = ::accept4(listener, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd >= 0) clients.push_back(std::make_shared<Connection>(fd));
    }
    for (size_t i = 0; i < polled; ++i) {
      const std::shared_ptr<Connection>& client = clients[i];
      if (client->closed.load()) continue;  // writer saw EPIPE
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(client->fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        client->closed.store(true);
        continue;
      }
      client->buffer.append(chunk, static_cast<size_t>(n));
      const bool keep = DrainLines(
          &client->buffer, service,
          [client](std::string response) { client->Write(std::move(response)); });
      if (!keep) client->closed.store(true);
    }
    clients.erase(std::remove_if(clients.begin(), clients.end(),
                                 [](const std::shared_ptr<Connection>& c) {
                                   return c->closed.load();
                                 }),
                  clients.end());
  }
  ::close(listener);
  ::unlink(path.c_str());
  // Drain before dropping connections so every admitted request's response
  // still reaches its client.
  service->Drain();
  for (auto& client : clients) client->closed.store(true);
  clients.clear();
  return 0;
}

Result<std::unique_ptr<Workbench>> BuildWorkbench(const Args& args) {
  // Shared-immutable state, built once: scenario, databases, trained
  // extractors/classifiers/queries, and the bounded extraction cache.
  // threads stays 0 — request drivers are the service's own workers. A
  // supervised worker runs the identical build from the identical flags, so
  // every replica answers with identical bytes.
  IEJOIN_ASSIGN_OR_RETURN(JoinScenario scenario,
                          LoadScenario(args.Get("scenario", "")));
  WorkbenchConfig config;
  config.scenario = scenario.corpus1->size() <= 2000 ? ScenarioSpec::Small()
                                                     : ScenarioSpec::PaperLike();
  config.extraction_cache = true;
  config.extraction_cache_bytes =
      args.GetInt("extraction-cache-mb", 64) * (1 << 20);
  return Workbench::CreateForScenario(config, std::move(scenario));
}

/// Supervised worker process: build the workbench replica, announce
/// readiness on the inherited channel fd, serve until told to stop. Chaos
/// kill points (IEJOIN_KILL_AFTER / IEJOIN_KILL_SITE) arm after the build
/// so injected deaths land mid-request, where failover must handle them.
int WorkerMain(const Args& args) {
  // The supervisor drives worker lifetime through kShutdown frames and
  // channel EOF; a terminal's SIGINT broadcast to the process group must
  // not tear workers down mid-request underneath it.
  ::signal(SIGINT, SIG_IGN);
  ::signal(SIGTERM, SIG_IGN);
  auto bench = BuildWorkbench(args);
  if (!bench.ok()) {
    std::fprintf(stderr, "iejoin_server[worker]: workbench: %s\n",
                 bench.status().ToString().c_str());
    return 1;
  }
  ckpt::ArmKillPointFromEnv();
  return service::RunWorkerLoop(
      static_cast<int>(args.GetInt("worker-channel-fd", -1)), bench->get(),
      args.GetDouble("deadline-seconds", 0.0));
}

int Main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage();
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.flags[arg] = argv[++i];
    } else {
      args.flags[arg] = "1";
    }
  }
  if (!args.Has("scenario")) return Usage();

  ::signal(SIGPIPE, SIG_IGN);
  if (args.Has("worker-channel-fd")) return WorkerMain(args);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;  // no SA_RESTART: reads EINTR out
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::unique_ptr<Workbench> bench;
  std::unique_ptr<service::JoinService> join_service;
  std::unique_ptr<service::Supervisor> supervisor;
  service::RequestServer* server = nullptr;

  const bool supervise = args.Has("supervise");
  if (supervise) {
    // The supervisor holds no workbench: workers own the replicas, the
    // parent only validates, routes, and supervises.
    service::SupervisorConfig config;
    config.workers = static_cast<int32_t>(args.GetInt("workers", 3));
    config.max_queue = static_cast<int32_t>(args.GetInt("max-queue", 32));
    config.retry_after_ms = args.GetInt("retry-after-ms", 50);
    config.shed_jitter_seed =
        static_cast<uint64_t>(args.GetInt("shed-jitter-seed", 1));
    config.max_request_replays =
        static_cast<int32_t>(args.GetInt("max-replays", 3));
    config.breaker.max_crashes =
        static_cast<int32_t>(args.GetInt("breaker-max-crashes", 5));
    config.breaker.window_seconds = args.GetDouble("breaker-window-seconds", 30.0);
    config.restart_backoff.initial_backoff_seconds =
        static_cast<double>(args.GetInt("restart-backoff-ms", 50)) / 1000.0;
    config.restart_backoff.max_backoff_seconds = 2.0;
    config.journal_path = args.Get("journal", "");
    config.telemetry_every_requests = args.GetInt("telemetry-every-requests", 16);
    // Workers exec via execv (no PATH search), but argv[0] may be a bare
    // name if this server was itself launched through PATH — resolve the
    // running image instead so every spawn (including crash restarts, where
    // cwd may have changed) execs the exact same binary.
    std::string self_exe = argv[0];
    char exe_buf[4096];
    const ssize_t exe_len =
        ::readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
    if (exe_len > 0) self_exe.assign(exe_buf, static_cast<size_t>(exe_len));
    config.worker_command = {self_exe, "--scenario", args.Get("scenario", ""),
                             "--extraction-cache-mb",
                             std::to_string(args.GetInt("extraction-cache-mb", 64)),
                             "--deadline-seconds",
                             args.Get("deadline-seconds", "0")};
    if (args.Has("shard")) {
      // Sharded scatter/gather: the supervisor runs the join driver itself
      // and therefore needs its own workbench; workers become extraction
      // shards over the same scenario.
      auto built = BuildWorkbench(args);
      if (!built.ok()) {
        std::fprintf(stderr, "iejoin_server: workbench: %s\n",
                     built.status().ToString().c_str());
        return 1;
      }
      bench = std::move(built).value();
      config.shard = true;
      config.bench = bench.get();
      config.default_deadline_seconds = args.GetDouble("deadline-seconds", 0.0);
      config.plan_cache_capacity = args.GetInt("plan-cache-capacity", 64);
    }
    supervisor = std::make_unique<service::Supervisor>(config);
    const Status started = supervisor->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "iejoin_server: supervisor: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    server = supervisor.get();
  } else {
    auto built = BuildWorkbench(args);
    if (!built.ok()) {
      std::fprintf(stderr, "iejoin_server: workbench: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    bench = std::move(built).value();

    service::ServiceConfig service_config;
    service_config.workers = static_cast<int32_t>(
        args.GetInt("workers", static_cast<int64_t>(
                                   ThreadPool::HardwareConcurrency())));
    service_config.max_queue =
        static_cast<int32_t>(args.GetInt("max-queue", 32));
    service_config.retry_after_ms = args.GetInt("retry-after-ms", 50);
    service_config.shed_jitter_seed =
        static_cast<uint64_t>(args.GetInt("shed-jitter-seed", 1));
    service_config.default_deadline_seconds =
        args.GetDouble("deadline-seconds", 0.0);
    service_config.telemetry_every_requests =
        args.GetInt("telemetry-every-requests", 16);
    service_config.plan_cache_capacity = args.GetInt("plan-cache-capacity", 64);
    join_service =
        std::make_unique<service::JoinService>(bench.get(), service_config);
    server = join_service.get();
  }

  obs::TimeSeriesRecorder::Options recorder_options;
  recorder_options.sample_every_docs = 0;  // frames keyed to requests, not docs
  obs::TimeSeriesRecorder recorder(recorder_options);
  if (args.Has("telemetry-out")) {
    const Status opened = recorder.OpenFile(args.Get("telemetry-out", ""));
    if (!opened.ok()) {
      std::fprintf(stderr, "iejoin_server: telemetry: %s\n",
                   opened.ToString().c_str());
      return 1;
    }
    if (supervisor != nullptr) {
      supervisor->AttachTelemetry(&recorder);
    } else {
      join_service->AttachTelemetry(&recorder);
    }
  }

  if (supervise) {
    std::fprintf(stderr,
                 "iejoin_server: ready (supervised%s, %lld worker processes, "
                 "queue %lld)\n",
                 args.Has("shard") ? " + sharded" : "",
                 static_cast<long long>(args.GetInt("workers", 3)),
                 static_cast<long long>(args.GetInt("max-queue", 32)));
  } else {
    std::fprintf(
        stderr, "iejoin_server: ready (%lld workers, queue %lld, cache %lld MiB)\n",
        static_cast<long long>(args.GetInt(
            "workers", static_cast<int64_t>(ThreadPool::HardwareConcurrency()))),
        static_cast<long long>(args.GetInt("max-queue", 32)),
        static_cast<long long>(args.GetInt("extraction-cache-mb", 64)));
  }

  const int exit_code = args.Has("socket")
                            ? ServeSocket(server, args.Get("socket", ""))
                            : ServeStdin(server);

  // Graceful shutdown: admitted requests finish and respond, then the
  // server-global stats land in the exposition file.
  server->Drain();
  if (args.Has("exposition-out")) {
    const Status wrote = obs::WriteFile(args.Get("exposition-out", ""),
                                        server->PrometheusExposition());
    if (!wrote.ok()) {
      std::fprintf(stderr, "iejoin_server: exposition: %s\n",
                   wrote.ToString().c_str());
    }
  }
  std::fprintf(stderr, "iejoin_server: drained, %lld requests completed\n",
               static_cast<long long>(server->completed_requests()));
  return exit_code;
}

}  // namespace
}  // namespace iejoin

int main(int argc, char** argv) { return iejoin::Main(argc, argv); }
