// bench_regress: CI perf-regression gate over bench_throughput JSON.
//
//   bench_regress --baseline FILE --candidate FILE [--tolerance R]
//
// Diffs a freshly measured BENCH_throughput.json against the committed
// docs/BENCH_baseline.json and exits non-zero when the candidate regresses.
// The gate is host-independent by construction:
//
//   * Deterministic fields (docs, good/bad tuples, cache hits/misses) are
//     simulated work — identical on any machine — and must match exactly.
//     A mismatch means the engine's behavior changed, not the hardware.
//   * Wall-clock throughput is machine-dependent, so absolute docs/sec is
//     never compared across files. Instead each row is normalized against
//     the same file's IDJN row at the same (threads, cache) — a relative
//     shape ("OIJN runs at 0.8x IDJN") that transfers across hosts — and
//     the candidate's shape must stay within --tolerance (default 0.35)
//     of the baseline's.
//
// Rows are matched by (algorithm, threads, cache); a baseline row missing
// from the candidate fails the gate. Exit codes: 0 pass, 1 regression or
// bad input, 2 usage.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string algorithm;
  long long threads = 0;
  std::string cache;
  long long docs = 0;
  double docs_per_sec = 0.0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long good_tuples = 0;
  long long bad_tuples = 0;

  std::string Key() const {
    return algorithm + "/t" + std::to_string(threads) + "/" + cache;
  }
};

std::string ReadFile(const std::string& path, bool* ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *ok = false;
    return "";
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  *ok = true;
  return out;
}

/// Raw token after `"key":` (tolerating spaces) inside one row object;
/// empty when absent.
std::string Token(const std::string& row, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  size_t pos = row.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  while (pos < row.size() && row[pos] == ' ') ++pos;
  size_t end = pos;
  while (end < row.size() && row[end] != ',' && row[end] != '}') ++end;
  std::string token = row.substr(pos, end - pos);
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
    token = token.substr(1, token.size() - 2);
  }
  return token;
}

/// Extracts every `{"algorithm": ...}` row object from a bench JSON file.
std::vector<Row> ParseRows(const std::string& json) {
  std::vector<Row> rows;
  size_t pos = 0;
  while ((pos = json.find("{\"algorithm\"", pos)) != std::string::npos) {
    const size_t end = json.find('}', pos);
    if (end == std::string::npos) break;
    const std::string object = json.substr(pos, end - pos + 1);
    Row row;
    row.algorithm = Token(object, "algorithm");
    row.threads = std::atoll(Token(object, "threads").c_str());
    row.cache = Token(object, "cache");
    row.docs = std::atoll(Token(object, "docs").c_str());
    row.docs_per_sec = std::atof(Token(object, "docs_per_sec").c_str());
    row.cache_hits = std::atoll(Token(object, "cache_hits").c_str());
    row.cache_misses = std::atoll(Token(object, "cache_misses").c_str());
    row.good_tuples = std::atoll(Token(object, "good_tuples").c_str());
    row.bad_tuples = std::atoll(Token(object, "bad_tuples").c_str());
    rows.push_back(row);
    pos = end + 1;
  }
  return rows;
}

const Row* Find(const std::vector<Row>& rows, const std::string& key) {
  for (const Row& row : rows) {
    if (row.Key() == key) return &row;
  }
  return nullptr;
}

/// docs/sec of a row relative to the same file's IDJN row at the same
/// (threads, cache); 0 when the reference is missing or degenerate.
double RelativeThroughput(const std::vector<Row>& rows, const Row& row) {
  const Row* reference =
      Find(rows, "idjn/t" + std::to_string(row.threads) + "/" + row.cache);
  if (reference == nullptr || reference->docs_per_sec <= 0.0) return 0.0;
  return row.docs_per_sec / reference->docs_per_sec;
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_regress --baseline FILE --candidate FILE"
               " [--tolerance R]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path;
  double tolerance = 0.35;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--candidate") == 0 && i + 1 < argc) {
      candidate_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return Usage();
  if (tolerance <= 0.0 || tolerance >= 1.0) {
    std::fprintf(stderr, "bench_regress: --tolerance must be in (0, 1)\n");
    return 2;
  }

  bool ok = false;
  const std::string baseline_json = ReadFile(baseline_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "bench_regress: cannot read %s\n",
                 baseline_path.c_str());
    return 1;
  }
  const std::string candidate_json = ReadFile(candidate_path, &ok);
  if (!ok) {
    std::fprintf(stderr, "bench_regress: cannot read %s\n",
                 candidate_path.c_str());
    return 1;
  }
  const std::vector<Row> baseline = ParseRows(baseline_json);
  const std::vector<Row> candidate = ParseRows(candidate_json);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_regress: no rows in baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  if (candidate.empty()) {
    std::fprintf(stderr, "bench_regress: no rows in candidate %s\n",
                 candidate_path.c_str());
    return 1;
  }

  int failures = 0;
  const auto fail = [&failures](const Row& row, const char* field,
                                double expected, double got) {
    std::fprintf(stderr, "FAIL %-16s %-13s baseline=%g candidate=%g\n",
                 row.Key().c_str(), field, expected, got);
    ++failures;
  };

  for (const Row& base : baseline) {
    const Row* cand = Find(candidate, base.Key());
    if (cand == nullptr) {
      std::fprintf(stderr, "FAIL %-16s missing from candidate\n",
                   base.Key().c_str());
      ++failures;
      continue;
    }
    // Deterministic simulated work: any drift is a behavior change.
    if (cand->docs != base.docs) {
      fail(base, "docs", static_cast<double>(base.docs),
           static_cast<double>(cand->docs));
    }
    if (cand->good_tuples != base.good_tuples) {
      fail(base, "good_tuples", static_cast<double>(base.good_tuples),
           static_cast<double>(cand->good_tuples));
    }
    if (cand->bad_tuples != base.bad_tuples) {
      fail(base, "bad_tuples", static_cast<double>(base.bad_tuples),
           static_cast<double>(cand->bad_tuples));
    }
    if (cand->cache_hits != base.cache_hits) {
      fail(base, "cache_hits", static_cast<double>(base.cache_hits),
           static_cast<double>(cand->cache_hits));
    }
    if (cand->cache_misses != base.cache_misses) {
      fail(base, "cache_misses", static_cast<double>(base.cache_misses),
           static_cast<double>(cand->cache_misses));
    }
    // Relative throughput shape (normalized within each file, so absolute
    // host speed cancels out). The IDJN reference rows are identically 1.0
    // on both sides and act as pure anchors.
    const double base_rel = RelativeThroughput(baseline, base);
    const double cand_rel = RelativeThroughput(candidate, *cand);
    if (base_rel > 0.0 && cand_rel > 0.0) {
      const double ratio = cand_rel / base_rel;
      if (ratio < 1.0 - tolerance || ratio > 1.0 / (1.0 - tolerance)) {
        fail(base, "rel_throughput", base_rel, cand_rel);
      } else {
        std::printf("ok   %-16s rel=%0.3f (baseline %0.3f)\n",
                    base.Key().c_str(), cand_rel, base_rel);
      }
    } else if (base_rel > 0.0) {
      fail(base, "rel_throughput", base_rel, cand_rel);
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "bench_regress: %d regression%s against %s\n",
                 failures, failures == 1 ? "" : "s", baseline_path.c_str());
    return 1;
  }
  std::printf("bench_regress: %zu rows match %s within tolerance %0.2f\n",
              baseline.size(), baseline_path.c_str(), tolerance);
  return 0;
}
